#include "analysis/validate.hpp"

#include <unordered_set>

namespace beholder6::analysis {

ValidationReport validate_candidates(const std::vector<CandidateSubnet>& candidates,
                                     const simnet::Topology& topo) {
  ValidationReport rep;
  for (const auto& c : candidates) {
    ++rep.candidates;
    const auto truth = topo.true_subnet(c.target);
    if (!truth) {
      ++rep.other;
      continue;
    }
    if (c.min_prefix_len == truth->len()) {
      ++rep.exact_matches;
    } else if (c.min_prefix_len > truth->len()) {
      // Candidate is more specific than the truth level — legitimate when
      // the truth is a distribution prefix containing finer structure.
      ++rep.more_specific;
    } else if (truth->len() - c.min_prefix_len == 1) {
      ++rep.one_bit_short;
    } else if (truth->len() - c.min_prefix_len == 2) {
      ++rep.two_bits_short;
    } else {
      ++rep.other;
    }
  }
  return rep;
}

std::vector<Ipv6Addr> stratified_sample(const std::vector<Ipv6Addr>& targets,
                                        const simnet::Topology& topo) {
  std::unordered_set<std::uint64_t> taken;  // hash of (subnet base hi, len)
  std::vector<Ipv6Addr> out;
  for (const auto& t : targets) {
    const auto truth = topo.true_subnet(t);
    if (!truth) continue;
    const auto key = splitmix64(truth->base().hi() * 131 + truth->len());
    if (taken.insert(key).second) out.push_back(t);
  }
  return out;
}

}  // namespace beholder6::analysis
