#include "analysis/mra.hpp"

#include <algorithm>

namespace beholder6::analysis {

MraAnalysis::MraAnalysis(std::vector<Ipv6Addr> addrs) : addrs_(std::move(addrs)) {
  std::sort(addrs_.begin(), addrs_.end());
  addrs_.erase(std::unique(addrs_.begin(), addrs_.end()), addrs_.end());
}

std::vector<Aggregate> MraAnalysis::aggregates(unsigned plen) const {
  std::vector<Aggregate> out;
  for (const auto& a : addrs_) {
    const Prefix p{a, plen};
    if (out.empty() || out.back().prefix != p)
      out.push_back(Aggregate{p, 1});
    else
      ++out.back().count;
  }
  return out;
}

std::size_t MraAnalysis::aggregate_count(unsigned plen) const {
  std::size_t n = 0;
  const Ipv6Addr* prev = nullptr;
  for (const auto& a : addrs_) {
    if (!prev || prev->common_prefix_len(a) < plen) ++n;
    prev = &a;
  }
  return n;
}

std::vector<Aggregate> MraAnalysis::densest(unsigned plen, std::size_t n) const {
  auto all = aggregates(plen);
  std::stable_sort(all.begin(), all.end(),
                   [](const Aggregate& x, const Aggregate& y) {
                     return x.count > y.count;
                   });
  if (all.size() > n) all.resize(n);
  return all;
}

std::map<std::size_t, std::size_t> MraAnalysis::population_histogram(
    unsigned plen) const {
  std::map<std::size_t, std::size_t> hist;
  for (const auto& agg : aggregates(plen)) ++hist[agg.count];
  return hist;
}

std::vector<SpatialClass> MraAnalysis::classify(unsigned plen) const {
  std::vector<SpatialClass> out;
  out.reserve(addrs_.size());
  for (const auto& agg : aggregates(plen)) {
    const auto cls = agg.count == 1    ? SpatialClass::kIsolated
                     : agg.count < 16u ? SpatialClass::kSparse
                                       : SpatialClass::kDense;
    out.insert(out.end(), agg.count, cls);
  }
  return out;
}

MraAnalysis::ClassCounts MraAnalysis::class_counts(unsigned plen) const {
  ClassCounts c;
  for (const auto& agg : aggregates(plen)) {
    if (agg.count == 1)
      ++c.isolated;
    else if (agg.count < 16u)
      c.sparse += agg.count;
    else
      c.dense += agg.count;
  }
  return c;
}

}  // namespace beholder6::analysis
