// analysis/validate.hpp — subnet-candidate validation against ground truth
// (paper §6 "Subnet Validation").
//
// The paper validates against interior-prefix truth data from major ISPs
// and finds exact matches rare (its candidates are lower bounds and often
// *more* specific than the distribution-level truth), then re-runs on a
// stratified sample — one target per truth subnet — to cap discovery at
// the truth granularity. We reproduce both protocols against the simnet
// ground-truth subnet oracle.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "analysis/pathdiv.hpp"
#include "simnet/topology.hpp"

namespace beholder6::analysis {

struct ValidationReport {
  std::size_t candidates = 0;
  std::size_t exact_matches = 0;       // candidate == true subnet prefix
  std::size_t more_specific = 0;       // candidate lies inside a true subnet
  std::size_t one_bit_short = 0;       // length off by exactly one
  std::size_t two_bits_short = 0;      // length off by exactly two
  std::size_t other = 0;

  [[nodiscard]] double exact_rate() const {
    return candidates == 0 ? 0.0
                           : static_cast<double>(exact_matches) /
                                 static_cast<double>(candidates);
  }
};

/// Compare candidate subnets with the ground-truth subnet containing each
/// candidate's target address.
[[nodiscard]] ValidationReport validate_candidates(
    const std::vector<CandidateSubnet>& candidates, const simnet::Topology& topo);

/// Stratified sampling (the paper's second validation protocol): keep at
/// most one target per true subnet, so discovery cannot out-resolve the
/// truth data. Returns the retained targets.
[[nodiscard]] std::vector<Ipv6Addr> stratified_sample(
    const std::vector<Ipv6Addr>& targets, const simnet::Topology& topo);

}  // namespace beholder6::analysis
