// analysis/mra.hpp — Multi-Resolution Aggregate analysis of address sets.
//
// Plonka and Berger (IMC 2015, cited in §2 of the paper) classify active
// IPv6 addresses spatially by aggregating them at multiple prefix lengths
// and examining how the population distributes across aggregates at each
// resolution. This module provides that analysis for seed lists, target
// sets and discovered-interface sets:
//
//   * per-resolution aggregate counts and population histograms,
//   * densest aggregates at a resolution (the "clusters" that both 6Gen
//     and the paper's DPL discussion revolve around),
//   * a spatial classification of each address (isolated / clustered /
//     dense-cluster member) echoing the temporal-spatial classification
//     of the original work.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "netbase/ipv6.hpp"
#include "netbase/prefix.hpp"

namespace beholder6::analysis {

/// One aggregate at a fixed resolution: a prefix and the number of input
/// addresses it covers.
struct Aggregate {
  Prefix prefix;
  std::size_t count = 0;

  friend bool operator==(const Aggregate&, const Aggregate&) = default;
};

/// Spatial class of an address relative to its covering aggregate at the
/// classification resolution (default /64, the Internet's subnet unit).
enum class SpatialClass : std::uint8_t {
  kIsolated,  // alone in its aggregate
  kSparse,    // 2..15 addresses in the aggregate
  kDense,     // 16+ addresses in the aggregate
};

[[nodiscard]] constexpr const char* to_string(SpatialClass c) {
  switch (c) {
    case SpatialClass::kIsolated: return "isolated";
    case SpatialClass::kSparse: return "sparse";
    case SpatialClass::kDense: return "dense";
  }
  return "?";
}

/// Multi-resolution aggregation over a fixed address set.
class MraAnalysis {
 public:
  /// Build from any address collection. Duplicates count once.
  explicit MraAnalysis(std::vector<Ipv6Addr> addrs);

  /// Number of distinct input addresses.
  [[nodiscard]] std::size_t size() const { return addrs_.size(); }

  /// All aggregates at a resolution (prefix length 0..128), in address
  /// order. O(n) over the sorted input.
  [[nodiscard]] std::vector<Aggregate> aggregates(unsigned plen) const;

  /// Number of distinct aggregates at a resolution (the "aggregate count
  /// curve": how it grows with plen characterizes clustering).
  [[nodiscard]] std::size_t aggregate_count(unsigned plen) const;

  /// The `n` most populated aggregates at a resolution, ties broken by
  /// address order.
  [[nodiscard]] std::vector<Aggregate> densest(unsigned plen, std::size_t n) const;

  /// Histogram of aggregate populations at a resolution: map from
  /// population to number of aggregates holding exactly that population.
  [[nodiscard]] std::map<std::size_t, std::size_t> population_histogram(
      unsigned plen) const;

  /// Spatial classification of every input address at a resolution.
  /// Returned in the same order as `addresses()`.
  [[nodiscard]] std::vector<SpatialClass> classify(unsigned plen = 64) const;

  /// Counts per spatial class at a resolution.
  struct ClassCounts {
    std::size_t isolated = 0;
    std::size_t sparse = 0;
    std::size_t dense = 0;
    [[nodiscard]] std::size_t total() const { return isolated + sparse + dense; }
  };
  [[nodiscard]] ClassCounts class_counts(unsigned plen = 64) const;

  /// The deduplicated, sorted input.
  [[nodiscard]] const std::vector<Ipv6Addr>& addresses() const { return addrs_; }

 private:
  std::vector<Ipv6Addr> addrs_;  // sorted, unique
};

}  // namespace beholder6::analysis
