// analysis/pathdiv.hpp — subnet discovery from trace results (paper §6).
//
// Two techniques:
//
//  1. Path-divergence discovery (discoverByPathDiv, after Lee et al.'s
//     Hobbit adapted to IPv6): compare traced paths to pairs of targets;
//     when the paths share a significant "last common subpath" (LCS) and
//     then diverge into significant "divergent suffixes" (DS), the two
//     targets are taken to lie in different subnets, and their
//     Discriminating Prefix Length becomes a *lower bound* on both subnets'
//     prefix lengths. The acceptance rules are parameterized exactly as in
//     the paper (c, C, A, s, S, z, T).
//
//  2. The "Identity Association (IA) Hack": a last hop whose address is the
//     ::1 of the *target's own /64* is taken to be the target LAN's
//     gateway, pinning an exact /64 subnet.
//
// Results are "candidate" subnets: prefix-length lower bounds, validated
// against simnet ground truth by analysis/validate.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "netbase/ipv6.hpp"
#include "netbase/prefix.hpp"
#include "simnet/topology.hpp"
#include "topology/collector.hpp"

namespace beholder6::analysis {

/// The paper's §6 parameter block, defaults as published.
struct PathDivParams {
  unsigned min_lcs_len = 2;        // c: LCS must have at least this many hops
  unsigned lcs_target_asn_hops = 1;  // C: LCS hops whose ASN matches target's
  bool forbid_missing_in_lcs = true;  // no gaps inside the LCS
  unsigned last_hop_not_vantage_asn = 1;  // A: last hop ASN != vantage ASN
  unsigned min_ds_len = 1;         // s: each divergent suffix length
  unsigned ds_target_asn_hops = 1;  // S: DS hops whose ASN matches target's
  bool forbid_empty_ds = true;     // z = 0: no zero-length DS
  bool require_same_target_asn = true;  // T: both targets in one ASN

  // §6 complications the paper works around by augmenting BGP data:
  //
  // (a) Networks that "use many ASNs simultaneously, e.g., one originating
  //     routes to the BGP prefix(es) covering router addresses and another
  //     originating routes for the prefix(es) covering their customer's
  //     (target) addresses". Such ASNs are declared equivalent: every ASN
  //     in the map compares equal to its canonical representative.
  std::map<simnet::Asn, simnet::Asn> equivalent_asns;
  //
  // (b) Router addresses "not covered in the BGP" because networks need not
  //     globally announce infrastructure space. These RIR-registered (but
  //     unannounced) prefixes are consulted when the BGP origin lookup
  //     fails, longest match first.
  std::vector<std::pair<Prefix, simnet::Asn>> rir_prefixes;

  /// Canonical form of an ASN under the equivalence map.
  [[nodiscard]] simnet::Asn canonical(simnet::Asn asn) const {
    const auto it = equivalent_asns.find(asn);
    return it == equivalent_asns.end() ? asn : it->second;
  }
};

/// One discovered candidate subnet: the prefix-length lower bound for the
/// subnet containing `target`.
struct CandidateSubnet {
  Ipv6Addr target;
  unsigned min_prefix_len = 0;
  bool via_ia_hack = false;

  [[nodiscard]] Prefix prefix() const { return Prefix{target, min_prefix_len}; }
};

struct PathDivResult {
  std::vector<CandidateSubnet> candidates;
  std::size_t pairs_examined = 0;
  std::size_t pairs_divergent = 0;
  std::size_t ia_hack_count = 0;

  /// Distinct candidate prefixes (the unit Figure 8 counts).
  [[nodiscard]] std::set<Prefix> distinct_prefixes() const {
    std::set<Prefix> out;
    for (const auto& c : candidates) out.insert(c.prefix());
    return out;
  }
};

/// Run path-divergence + IA-hack discovery over a campaign's traces.
/// Adjacent targets (in sorted address order) are compared pairwise — the
/// highest-DPL pairings, which set the tightest lower bounds.
[[nodiscard]] PathDivResult discover_by_path_div(
    const beholder6::topology::TraceCollector& collector,
    const simnet::Topology& topo, const simnet::VantageInfo& vantage,
    const PathDivParams& params = {});

/// The IA hack alone: /64 candidates from ::1-in-target-/64 last hops.
[[nodiscard]] std::vector<CandidateSubnet> ia_hack(
    const beholder6::topology::TraceCollector& collector);

/// Histogram of candidate min-prefix-lengths (Figure 8b rows): index =
/// prefix length 0..64.
[[nodiscard]] std::vector<std::size_t> length_histogram(
    const std::set<Prefix>& prefixes);

}  // namespace beholder6::analysis
