#include "analysis/pathdiv.hpp"

#include <algorithm>

namespace beholder6::analysis {

namespace {

using beholder6::topology::Trace;

/// Hop ASN via BGP origin of the hop's interface address, augmented with
/// the RIR-registered prefixes for router space that is not announced
/// (paper §6 complication (b)). Longest RIR match wins where BGP has none.
std::optional<simnet::Asn> hop_asn(const simnet::Topology& topo,
                                   const PathDivParams& params,
                                   const Ipv6Addr& a) {
  if (const auto o = topo.origin(a)) return params.canonical(*o);
  const std::pair<Prefix, simnet::Asn>* best = nullptr;
  for (const auto& entry : params.rir_prefixes)
    if (entry.first.contains(a) && (!best || entry.first.len() > best->first.len()))
      best = &entry;
  if (best) return params.canonical(best->second);
  return std::nullopt;
}

/// Contiguity check: TTLs t..t+len-1 all present as TE hops.
bool contiguous(const Trace& tr, std::uint8_t from_ttl, unsigned len) {
  for (unsigned i = 0; i < len; ++i) {
    const auto it = tr.hops.find(static_cast<std::uint8_t>(from_ttl + i));
    if (it == tr.hops.end() ||
        it->second.type != wire::Icmp6Type::kTimeExceeded)
      return false;
  }
  return true;
}

}  // namespace

std::vector<CandidateSubnet> ia_hack(
    const beholder6::topology::TraceCollector& collector) {
  std::vector<CandidateSubnet> out;
  // beholder6: lint-allow(unordered-iter): collected candidates are sorted
  // into target order below, so the table's visit order cannot leak
  for (const auto& [target, trace] : collector.traces()) {
    const auto hops = trace.router_hops();
    if (hops.empty()) continue;
    const auto& last = hops.back();
    if (last.lo() == 1 && last.hi() == target.hi() && last != target)
      out.push_back(CandidateSubnet{target, 64, true});
  }
  // Canonical order: the collector's trace table iterates in layout order
  // (deterministic for one insertion history, but serial and split-merged
  // runs build different histories from identical trace content). Sorting
  // makes the candidate list a pure function of the trace *set*.
  std::sort(out.begin(), out.end(),
            [](const CandidateSubnet& a, const CandidateSubnet& b) {
              return a.target < b.target;
            });
  return out;
}

PathDivResult discover_by_path_div(
    const beholder6::topology::TraceCollector& collector,
    const simnet::Topology& topo, const simnet::VantageInfo& vantage,
    const PathDivParams& params) {
  PathDivResult result;

  // Sort targets so adjacent comparisons maximize DPL.
  std::vector<const Trace*> traces;
  traces.reserve(collector.traces().size());
  // beholder6: lint-allow(unordered-iter): collected pointers are sorted by
  // target immediately below; table order cannot reach the pair scan
  for (const auto& [t, tr] : collector.traces())
    if (!tr.hops.empty()) traces.push_back(&tr);
  std::sort(traces.begin(), traces.end(),
            [](const Trace* a, const Trace* b) { return a->target < b->target; });

  for (std::size_t i = 0; i + 1 < traces.size(); ++i) {
    const Trace& a = *traces[i];
    const Trace& b = *traces[i + 1];
    ++result.pairs_examined;

    auto asn_a = topo.origin(a.target), asn_b = topo.origin(b.target);
    if (asn_a) asn_a = params.canonical(*asn_a);
    if (asn_b) asn_b = params.canonical(*asn_b);
    if (params.require_same_target_asn && (!asn_a || !asn_b || *asn_a != *asn_b))
      continue;
    const auto target_asn = asn_a;

    const auto ha = a.router_hops(), hb = b.router_hops();
    if (ha.empty() || hb.empty()) continue;

    // LCS: longest common prefix of the two hop sequences.
    std::size_t lcs = 0;
    while (lcs < ha.size() && lcs < hb.size() && ha[lcs] == hb[lcs]) ++lcs;
    if (lcs < params.min_lcs_len) continue;

    // The LCS must be TTL-contiguous in both traces (no silent hops inside).
    if (params.forbid_missing_in_lcs) {
      const auto first_a = a.hops.begin()->first, first_b = b.hops.begin()->first;
      if (!contiguous(a, first_a, static_cast<unsigned>(lcs)) ||
          !contiguous(b, first_b, static_cast<unsigned>(lcs)) || first_a != first_b)
        continue;
    }

    // C: at least this many LCS hops inside the target's ASN.
    if (target_asn) {
      unsigned in_asn = 0;
      for (std::size_t k = 0; k < lcs; ++k)
        in_asn += hop_asn(topo, params, ha[k]) == target_asn;
      if (in_asn < params.lcs_target_asn_hops) continue;
    }

    // Divergent suffixes.
    const std::size_t dsa = ha.size() - lcs, dsb = hb.size() - lcs;
    if (params.forbid_empty_ds && (dsa == 0 || dsb == 0)) continue;
    if (dsa < params.min_ds_len || dsb < params.min_ds_len) continue;

    // S: DS hops in the target's ASN.
    if (target_asn) {
      unsigned sa = 0, sb = 0;
      for (std::size_t k = lcs; k < ha.size(); ++k)
        sa += hop_asn(topo, params, ha[k]) == target_asn;
      for (std::size_t k = lcs; k < hb.size(); ++k)
        sb += hop_asn(topo, params, hb[k]) == target_asn;
      if (sa < params.ds_target_asn_hops || sb < params.ds_target_asn_hops) continue;
    }

    // A: last hops must have left the vantage ASN (canonicalized, so a
    // vantage homed in one sibling of an equivalent-ASN family is treated
    // as inside the whole family).
    if (params.last_hop_not_vantage_asn) {
      const auto vasn = params.canonical(vantage.asn);
      if (hop_asn(topo, params, ha.back()) == vasn ||
          hop_asn(topo, params, hb.back()) == vasn)
        continue;
    }

    ++result.pairs_divergent;
    const unsigned dpl = a.target.common_prefix_len(b.target) + 1;
    result.candidates.push_back(CandidateSubnet{a.target, std::min(dpl, 64u), false});
    result.candidates.push_back(CandidateSubnet{b.target, std::min(dpl, 64u), false});
  }

  // Fold in the IA hack (/64 pinning), as the paper's discoverByPathDiv does.
  for (auto c : ia_hack(collector)) {
    result.candidates.push_back(c);
    ++result.ia_hack_count;
  }
  return result;
}

std::vector<std::size_t> length_histogram(const std::set<Prefix>& prefixes) {
  std::vector<std::size_t> hist(65, 0);
  for (const auto& p : prefixes) ++hist[std::min(p.len(), 64u)];
  return hist;
}

}  // namespace beholder6::analysis
