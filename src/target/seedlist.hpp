// target/seedlist.hpp — the vocabulary of the target-generation pipeline
// (paper §3, Figure 1: seed sourcing → prefix transformation → target
// synthesis).
//
// A SeedList is what a seed *source* produces: a named list of prefix
// entries. Address-granularity sources (caida, fiebig, fdns_any, dnsdb,
// 6gen, tum, random) emit /128 entries; aggregate sources (the kIP-anonymized
// CDN client lists) emit shorter prefixes. A TargetSet is what *synthesis*
// produces from a transformed list: concrete probe destinations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "netbase/ipv6.hpp"
#include "netbase/prefix.hpp"

namespace beholder6::target {

/// A named list of seed entries. Entries are canonical prefixes: /128 for
/// concrete addresses, shorter for aggregate sources.
struct SeedList {
  std::string name;
  std::vector<Prefix> entries;

  [[nodiscard]] std::size_t size() const { return entries.size(); }
};

/// A named list of synthesized probe targets.
struct TargetSet {
  std::string name;
  std::vector<Ipv6Addr> addrs;

  [[nodiscard]] std::size_t size() const { return addrs.size(); }
};

/// The fixed interface identifier the paper's fixed-IID synthesis installs
/// into every target /64. Deliberately classless: the high 48 bits are
/// non-zero (not lowbyte) and bytes 3-4 are not ff:fe (not EUI-64), so
/// result analysis never confuses synthesized targets with discovered
/// addresses of either structured class.
inline constexpr std::uint64_t kFixedIid = 0x5a19ce6b5eedc0deULL;

}  // namespace beholder6::target
