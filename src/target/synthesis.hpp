// target/synthesis.hpp — target synthesis: the final step of the paper's
// pipeline (Figure 1), turning a zn-transformed seed list into concrete
// probe destinations. Three strategies from the Table 4 IID trial:
//
//   fixediid  — install the same pseudo-random IID into every /zn (the
//               campaign default: responses are attributable and synthesized
//               targets are distinguishable from discovered addresses)
//   lowbyte1  — install ::1 (the "every gateway is ::1" heuristic)
//   known     — keep real seed addresses that fall inside the transformed
//               space (what rDNS-derived lists uniquely enable)
#pragma once

#include <vector>

#include "target/seedlist.hpp"

namespace beholder6::target {

/// One target per entry: base | ::<kFixedIid>.
[[nodiscard]] TargetSet synthesize_fixediid(const SeedList& zn_list);

/// One target per entry: base | ::1.
[[nodiscard]] TargetSet synthesize_lowbyte1(const SeedList& zn_list);

/// Known-address synthesis: every address of `known` that falls inside some
/// entry of `zn_list`, deduplicated in input order.
[[nodiscard]] TargetSet synthesize_known(const SeedList& zn_list,
                                         const std::vector<Ipv6Addr>& known);

/// Union of several target sets, deduplicated in input order.
[[nodiscard]] TargetSet combine(const std::vector<const TargetSet*>& parts,
                                const std::string& name);

}  // namespace beholder6::target
