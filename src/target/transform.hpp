// target/transform.hpp — the zn prefix transformation (paper §3.3) and the
// kIP anonymity aggregation used by the CDN seed source (paper §3.2).
//
// The zn transformation normalizes a seed list to /n granularity:
//
//   * entries at least as specific as /n are truncated to their covering /n
//     and deduplicated — this is what collapses dense hitlists (z40 of a
//     server farm is a handful of prefixes; z64 keeps every subnet), and
//
//   * entries *less* specific than /n (CDN kIP aggregates) are expanded
//     into the /n subnets they cover. Expansion is capped per entry and
//     samples the aggregate with an even stride, so a pathological short
//     aggregate cannot blow a campaign up by 2^16.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "target/seedlist.hpp"

namespace beholder6::target {

/// Maximum /n subnets synthesized from one too-short entry. Powers of two
/// keep the sampling stride exact.
inline constexpr std::uint64_t kMaxExpandPerEntry = 256;

/// Normalize `in` to /zn granularity (zn in [1, 64] — the paper uses 40,
/// 48, 56, 64). Output entries are all /zn, deduplicated, in first-seen
/// order; the name records the transformation level.
[[nodiscard]] SeedList transform_zn(const SeedList& in, unsigned zn);

/// Discriminating prefix length per address: the shortest prefix length
/// that separates it from its nearest neighbour in the set (1 + longest
/// common prefix with any other member, capped at 128). A lone address has
/// DPL 0. Input order does not matter; one value per input address.
/// This is the paper's Figure 3 metric: it captures how zn transformation
/// and set combination change a target set's spatial clustering.
[[nodiscard]] std::vector<unsigned> dpl_of(const std::vector<Ipv6Addr>& addrs);

/// CDF over DPL values: out[p] = fraction of addresses with DPL <= p, for
/// p in [0, 128].
[[nodiscard]] std::vector<double> dpl_cdf(const std::vector<unsigned>& dpls);

/// kIP aggregation (Plonka & Berger, IMC 2017): given active WWW client
/// /64s, publish the most specific prefixes that each cover at least k
/// distinct client /64s, and publish *nothing* for space below the
/// anonymity threshold. Smaller k ⇒ weaker anonymity ⇒ more, longer
/// published prefixes.
class KipAggregator {
 public:
  explicit KipAggregator(unsigned k) : k_(k < 1 ? 1 : k) {}

  /// Record one active client /64 (only its /64 prefix is kept).
  void add(const Prefix& slash64) { hi64s_.insert(slash64.base().hi()); }

  [[nodiscard]] std::size_t distinct_64s() const { return hi64s_.size(); }

  /// Published aggregates, in address order. Aggregates never cross a /48
  /// boundary (kIP publishes within routed site granularity).
  [[nodiscard]] std::vector<Prefix> aggregate() const;

 private:
  unsigned k_;
  std::set<std::uint64_t> hi64s_;  // distinct client /64s, by high half
};

}  // namespace beholder6::target
