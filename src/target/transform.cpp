#include "target/transform.hpp"

#include <algorithm>
#include <unordered_set>

namespace beholder6::target {

SeedList transform_zn(const SeedList& in, unsigned zn) {
  if (zn < 1) zn = 1;
  if (zn > 64) zn = 64;
  SeedList out;
  out.name = in.name + "-z" + std::to_string(zn);
  std::unordered_set<Ipv6Addr, Ipv6AddrHash> seen;
  seen.reserve(in.entries.size());
  auto push = [&](const Ipv6Addr& base) {
    const Prefix p{base, zn};
    if (seen.insert(p.base()).second) out.entries.push_back(p);
  };
  for (const auto& e : in.entries) {
    if (e.len() >= zn) {
      push(e.base());
      continue;
    }
    // Expansion: cover the aggregate with /zn subnets. The subnet index
    // occupies bits [e.len(), zn) of the high half; when the aggregate holds
    // more than kMaxExpandPerEntry subnets, sample it with an even stride
    // (both counts are powers of two, so the stride is exact; a sub-/1
    // entry samples the aggregate's lower half to stay representable).
    const unsigned extra = zn - e.len();
    const std::uint64_t slots = 1ULL << std::min(extra, 63u);
    const std::uint64_t count = std::min<std::uint64_t>(slots, kMaxExpandPerEntry);
    const std::uint64_t stride = slots / count;
    const std::uint64_t base_hi = e.base().hi();
    for (std::uint64_t j = 0; j < count; ++j)
      push(Ipv6Addr::from_halves(base_hi | ((j * stride) << (64 - zn)), 0));
  }
  return out;
}

namespace {

/// Publish the most specific prefixes under [first, last) (sorted /64 high
/// halves within `base_hi`/`len`) that each cover >= k members; space whose
/// member count is below k is suppressed entirely.
void publish(const std::uint64_t* first, const std::uint64_t* last,
             std::uint64_t base_hi, unsigned len, unsigned k,
             std::vector<Prefix>& out) {
  const auto count = static_cast<std::uint64_t>(last - first);
  if (count < k) return;
  if (len >= 64) {
    out.emplace_back(Ipv6Addr::from_halves(base_hi, 0), 64);
    return;
  }
  const std::uint64_t mid_hi = base_hi | (1ULL << (63 - len));
  const auto* mid = std::lower_bound(first, last, mid_hi);
  const auto left = static_cast<std::uint64_t>(mid - first);
  const auto right = count - left;
  if (left >= k && right >= k) {
    publish(first, mid, base_hi, len + 1, k, out);
    publish(mid, last, mid_hi, len + 1, k, out);
  } else {
    out.emplace_back(Ipv6Addr::from_halves(base_hi, 0), len);
  }
}

}  // namespace

std::vector<Prefix> KipAggregator::aggregate() const {
  std::vector<std::uint64_t> sorted(hi64s_.begin(), hi64s_.end());
  std::vector<Prefix> out;
  // Group by /48 and aggregate within each group independently.
  std::size_t i = 0;
  while (i < sorted.size()) {
    const std::uint64_t site = sorted[i] & ~0xffffULL;  // covering /48
    std::size_t j = i;
    while (j < sorted.size() && (sorted[j] & ~0xffffULL) == site) ++j;
    publish(sorted.data() + i, sorted.data() + j, site, 48, k_, out);
    i = j;
  }
  return out;
}

std::vector<unsigned> dpl_of(const std::vector<Ipv6Addr>& addrs) {
  std::vector<Ipv6Addr> sorted = addrs;
  std::sort(sorted.begin(), sorted.end());
  std::vector<unsigned> dpls;
  dpls.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    unsigned cpl = 0;
    if (i > 0) cpl = std::max(cpl, sorted[i].common_prefix_len(sorted[i - 1]));
    if (i + 1 < sorted.size())
      cpl = std::max(cpl, sorted[i].common_prefix_len(sorted[i + 1]));
    dpls.push_back(sorted.size() < 2 ? 0 : std::min(cpl + 1, 128u));
  }
  return dpls;
}

std::vector<double> dpl_cdf(const std::vector<unsigned>& dpls) {
  std::vector<double> cdf(129, 0.0);
  if (dpls.empty()) return cdf;
  for (const auto d : dpls) ++cdf[std::min(d, 128u)];
  double acc = 0.0;
  for (auto& v : cdf) {
    acc += v;
    v = acc / static_cast<double>(dpls.size());
  }
  return cdf;
}

}  // namespace beholder6::target
