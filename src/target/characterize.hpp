// target/characterize.hpp — target-set feature analysis (paper Table 5 and
// Figures 2/3): size, routedness, BGP prefix / origin-AS coverage, 6to4
// share, per-universe exclusives, and the discriminating-prefix-length
// (DPL) distribution that captures a set's spatial clustering.
#pragma once

#include <set>
#include <vector>

#include "simnet/topology.hpp"
#include "target/seedlist.hpp"

namespace beholder6::target {

/// Features of one target set relative to the BGP ground truth. The excl_*
/// fields are zero until exclusive_features() fills them against a
/// universe of sets.
struct SetFeatures {
  std::size_t unique_targets = 0;
  std::size_t routed_targets = 0;
  std::size_t six_to_four = 0;         // targets under 2002::/16
  std::set<Prefix> bgp_prefixes;       // covering announcements (LPM)
  std::set<simnet::Asn> asns;          // origin ASes of routed targets
  std::size_t excl_targets = 0;        // targets in exactly this set
  std::size_t excl_routed = 0;
  std::size_t excl_bgp_prefixes = 0;   // prefixes no other set touches
  std::size_t excl_asns = 0;
};

[[nodiscard]] SetFeatures characterize(const TargetSet& set,
                                       const simnet::Topology& topo);

/// Fill the excl_* fields of `features[i]` (parallel to `universe`): a
/// feature is exclusive to set i when no other universe member contributes
/// it.
void exclusive_features(const std::vector<const TargetSet*>& universe,
                        std::vector<SetFeatures>& features,
                        const simnet::Topology& topo);

}  // namespace beholder6::target
