#include "target/characterize.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace beholder6::target {

SetFeatures characterize(const TargetSet& set, const simnet::Topology& topo) {
  SetFeatures f;
  std::unordered_set<Ipv6Addr, Ipv6AddrHash> uniq;
  uniq.reserve(set.addrs.size());
  for (const auto& a : set.addrs) {
    if (!uniq.insert(a).second) continue;
    ++f.unique_targets;
    if ((a.hi() >> 48) == 0x2002) ++f.six_to_four;
    if (const auto m = topo.bgp().lpm(a)) {
      ++f.routed_targets;
      f.bgp_prefixes.insert(m->first);
      f.asns.insert(*m->second);
    }
  }
  return f;
}

void exclusive_features(const std::vector<const TargetSet*>& universe,
                        std::vector<SetFeatures>& features,
                        const simnet::Topology& topo) {
  // Count, per feature, how many universe sets contribute it; a set's
  // exclusives are the features with count one that it contributes.
  std::unordered_map<Ipv6Addr, unsigned, Ipv6AddrHash> target_sets;
  std::map<Prefix, unsigned> prefix_sets;
  std::map<simnet::Asn, unsigned> asn_sets;
  std::vector<std::unordered_set<Ipv6Addr, Ipv6AddrHash>> uniq(universe.size());
  for (std::size_t i = 0; i < universe.size(); ++i) {
    for (const auto& a : universe[i]->addrs) uniq[i].insert(a);
    // beholder6: lint-allow(unordered-iter): keyed counter increments are
    // visit-order independent
    for (const auto& a : uniq[i]) ++target_sets[a];
    if (i < features.size()) {
      for (const auto& p : features[i].bgp_prefixes) ++prefix_sets[p];
      for (const auto asn : features[i].asns) ++asn_sets[asn];
    }
  }
  for (std::size_t i = 0; i < universe.size() && i < features.size(); ++i) {
    auto& f = features[i];
    f.excl_targets = f.excl_routed = f.excl_bgp_prefixes = f.excl_asns = 0;
    // beholder6: lint-allow(unordered-iter): pure counting fold, no output
    // ordering depends on the visit order
    for (const auto& a : uniq[i]) {
      if (target_sets[a] != 1) continue;
      ++f.excl_targets;
      f.excl_routed += topo.bgp().covers(a);
    }
    for (const auto& p : f.bgp_prefixes) f.excl_bgp_prefixes += prefix_sets[p] == 1;
    for (const auto asn : f.asns) f.excl_asns += asn_sets[asn] == 1;
  }
}

}  // namespace beholder6::target
