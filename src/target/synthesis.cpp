#include "target/synthesis.hpp"

#include <unordered_set>

namespace beholder6::target {

namespace {

TargetSet synthesize_iid(const SeedList& zn_list, std::uint64_t iid,
                         const char* suffix) {
  TargetSet set;
  set.name = zn_list.name + suffix;
  set.addrs.reserve(zn_list.entries.size());
  std::unordered_set<Ipv6Addr, Ipv6AddrHash> seen;
  seen.reserve(zn_list.entries.size());
  for (const auto& e : zn_list.entries) {
    const auto a = e.base() | Ipv6Addr::from_halves(0, iid);
    if (seen.insert(a).second) set.addrs.push_back(a);
  }
  return set;
}

}  // namespace

TargetSet synthesize_fixediid(const SeedList& zn_list) {
  return synthesize_iid(zn_list, kFixedIid, "-fixediid");
}

TargetSet synthesize_lowbyte1(const SeedList& zn_list) {
  return synthesize_iid(zn_list, 1, "-lowbyte1");
}

TargetSet synthesize_known(const SeedList& zn_list,
                           const std::vector<Ipv6Addr>& known) {
  TargetSet set;
  set.name = zn_list.name + "-known";
  // All entries of a transformed list share one length; membership is a
  // hash lookup on the masked address.
  const unsigned zn = zn_list.entries.empty() ? 64 : zn_list.entries[0].len();
  std::unordered_set<Ipv6Addr, Ipv6AddrHash> bases;
  bases.reserve(zn_list.entries.size());
  for (const auto& e : zn_list.entries) bases.insert(e.base());
  std::unordered_set<Ipv6Addr, Ipv6AddrHash> seen;
  for (const auto& a : known)
    if (bases.contains(a.masked(zn)) && seen.insert(a).second)
      set.addrs.push_back(a);
  return set;
}

TargetSet combine(const std::vector<const TargetSet*>& parts,
                  const std::string& name) {
  TargetSet set;
  set.name = name;
  std::unordered_set<Ipv6Addr, Ipv6AddrHash> seen;
  for (const auto* part : parts)
    for (const auto& a : part->addrs)
      if (seen.insert(a).second) set.addrs.push_back(a);
  return set;
}

}  // namespace beholder6::target
