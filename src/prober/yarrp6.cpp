#include "prober/yarrp6.hpp"

#include <algorithm>

#include "campaign/runner.hpp"

namespace beholder6::prober {

bool send_probe(simnet::Network& net, const ProbeConfig& cfg, const Ipv6Addr& target,
                std::uint8_t ttl, const ResponseSink& sink) {
  return campaign::inject_probe(net, cfg.endpoint(), target, ttl,
                                [&](const wire::DecodedReply& dec) {
                                  if (sink) sink(dec);
                                });
}

void Yarrp6Source::begin(std::uint64_t now_us) {
  if (targets_.empty() || cfg_.max_ttl == 0) {
    exhausted_ = true;
    return;
  }
  domain_ = targets_.size() * cfg_.max_ttl;
  perm_.emplace(domain_, cfg_.permutation_key);
  index_ = cfg_.shard;
  stride_ = cfg_.shard_count ? cfg_.shard_count : 1;
  last_new_us_.assign(cfg_.max_ttl + 1u, now_us);
  seen_at_ttl_.assign(cfg_.max_ttl + 1u, {});
}

campaign::Poll Yarrp6Source::next(std::uint64_t now_us) {
  if (exhausted_) return campaign::Poll::exhausted();

  // A pending fill extends the current trace one hop before the permuted
  // walk resumes; fills are sequential but rare and at the path tail,
  // where per-router load is minimal (paper §4.1).
  if (fill_pending_) {
    fill_pending_ = false;
    return campaign::Poll::emit({fill_target_,
                                 static_cast<std::uint8_t>(fill_ttl_ + 1), true});
  }

  while (index_ < domain_) {
    std::uint64_t v;
    if (pending_valid_) {
      v = pending_v_;
      pending_valid_ = false;
    } else {
      v = perm_->map(index_);
    }
    index_ += stride_;
    if (index_ < domain_) {
      // Resolve the *next* permuted position now and start pulling its
      // target line: the permuted walk visits targets in random order over
      // arrays far larger than caches naturally hold, and a prefetch
      // issued a whole probe early is free to complete in the background.
      // The value also feeds next_target_hint(), which lets the campaign
      // runner warm the network's route lookup the same way.
      pending_v_ = perm_->map(index_);
      pending_valid_ = true;
      __builtin_prefetch(&targets_[pending_v_ / cfg_.max_ttl]);
    }
    const auto& target = targets_[v / cfg_.max_ttl];
    const auto ttl = static_cast<std::uint8_t>(v % cfg_.max_ttl + 1);

    if (cfg_.neighborhood && ttl <= cfg_.neighborhood_ttl &&
        now_us - last_new_us_[ttl] > cfg_.neighborhood_window_us) {
      ++skips_;
      continue;  // skips consume no virtual time
    }

    still_on_path_ = false;
    return campaign::Poll::emit({target, ttl, false});
  }
  exhausted_ = true;
  return campaign::Poll::exhausted();
}

void Yarrp6Source::on_reply(const campaign::Probe&, const wire::DecodedReply& reply,
                            std::uint64_t now_us) {
  still_on_path_ = reply.type == wire::Icmp6Type::kTimeExceeded;
  if (cfg_.neighborhood && reply.probe.ttl <= cfg_.max_ttl &&
      seen_at_ttl_[reply.probe.ttl].insert(reply.responder).second)
    last_new_us_[reply.probe.ttl] = now_us;
}

void Yarrp6Source::on_probe_done(const campaign::Probe& probe, bool answered,
                                 std::uint64_t) {
  if (!cfg_.fill_mode) return;
  // A fill chain starts at the probing horizon and continues hop by hop
  // while replies keep saying "still on path", up to the absolute cap.
  // (ttl >= max_ttl holds exactly for horizon and fill probes.)
  if (answered && still_on_path_ && probe.ttl >= cfg_.max_ttl &&
      probe.ttl < cfg_.fill_cap) {
    fill_pending_ = true;
    fill_target_ = probe.target;
    fill_ttl_ = probe.ttl;
  }
}

void Yarrp6Source::finish(campaign::ProbeStats& stats) const {
  if (report_traces_) stats.traces = targets_.size();
  stats.neighborhood_skips = skips_;
}

std::vector<std::unique_ptr<campaign::ProbeSource>> Yarrp6Source::split(
    std::uint64_t k) const {
  std::vector<std::unique_ptr<campaign::ProbeSource>> children;
  if (k <= 1) return children;
  const std::uint64_t stride = cfg_.shard_count ? cfg_.shard_count : 1;
  // Clamp to the walk's own position count: children beyond it would be
  // born exhausted yet still cost a full network replica each.
  const std::uint64_t domain = targets_.size() * cfg_.max_ttl;
  const std::uint64_t positions =
      cfg_.shard < domain ? (domain - cfg_.shard + stride - 1) / stride : 0;
  k = std::min(k, positions);
  if (k <= 1) return children;  // 0 or 1 position: run the source whole
  children.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) {
    Yarrp6Config sub = cfg_;
    sub.shard = cfg_.shard + i * stride;
    sub.shard_count = stride * k;
    auto child = std::make_unique<Yarrp6Source>(sub, targets_);
    // The trace count is a property of the whole walk; exactly one child
    // contributes it so the parent-level fold equals the unsplit value —
    // including under re-splitting, where a non-reporting parent's
    // children must all stay non-reporting.
    child->report_traces_ = report_traces_ && i == 0;
    children.push_back(std::move(child));
  }
  return children;
}

std::optional<Ipv6Addr> Yarrp6Source::next_target_hint() const {
  // A pending fill supersedes the permuted walk; otherwise the look-ahead
  // position already resolved in next() names the likely next target.
  if (fill_pending_) return fill_target_;
  if (pending_valid_) return targets_[pending_v_ / cfg_.max_ttl];
  return std::nullopt;
}

ProbeStats Yarrp6Prober::run(simnet::Network& net, const std::vector<Ipv6Addr>& targets,
                             const ResponseSink& sink) {
  Yarrp6Source source{cfg_, targets};
  return campaign::CampaignRunner::run_one(net, source, cfg_.endpoint(),
                                           cfg_.pacing(), sink);
}

}  // namespace beholder6::prober
