#include "prober/yarrp6.hpp"

namespace beholder6::prober {

bool send_probe(simnet::Network& net, const ProbeConfig& cfg, const Ipv6Addr& target,
                std::uint8_t ttl, const ResponseSink& sink) {
  wire::ProbeSpec spec;
  spec.src = cfg.src;
  spec.target = target;
  spec.proto = cfg.proto;
  spec.ttl = ttl;
  spec.elapsed_us = static_cast<std::uint32_t>(net.now_us());
  spec.instance = cfg.instance;
  const auto replies = net.inject(wire::encode_probe(spec));
  bool any = false;
  for (const auto& r : replies) {
    const auto dec = wire::decode_reply(r, static_cast<std::uint32_t>(net.now_us()));
    if (dec && dec->probe.instance == cfg.instance) {
      any = true;
      if (sink) sink(*dec);
    }
  }
  return any;
}

ProbeStats Yarrp6Prober::run(simnet::Network& net, const std::vector<Ipv6Addr>& targets,
                             const ResponseSink& sink) {
  ProbeStats stats;
  stats.traces = targets.size();
  if (targets.empty() || cfg_.max_ttl == 0) return stats;

  const std::uint64_t gap_us =
      static_cast<std::uint64_t>(1e6 / (cfg_.pps > 0 ? cfg_.pps : 1.0));
  const std::uint64_t domain = targets.size() * cfg_.max_ttl;
  Permutation perm{domain, cfg_.permutation_key};
  const std::uint64_t start = net.now_us();

  // Neighborhood-mode bookkeeping, indexed by TTL.
  std::vector<std::uint64_t> last_new_us(cfg_.max_ttl + 1, net.now_us());
  std::vector<std::unordered_set<Ipv6Addr, Ipv6AddrHash>> seen_at_ttl(cfg_.max_ttl + 1);

  const std::uint64_t stride = cfg_.shard_count ? cfg_.shard_count : 1;
  for (std::uint64_t i = cfg_.shard; i < domain; i += stride) {
    const std::uint64_t v = perm.map(i);
    const auto& target = targets[v / cfg_.max_ttl];
    const auto ttl = static_cast<std::uint8_t>(v % cfg_.max_ttl + 1);

    if (cfg_.neighborhood && ttl <= cfg_.neighborhood_ttl &&
        net.now_us() - last_new_us[ttl] > cfg_.neighborhood_window_us) {
      ++stats.neighborhood_skips;
      continue;
    }

    bool still_on_path = false;  // last reply was Time Exceeded (not terminal)
    auto wrapped = [&](const wire::DecodedReply& rep) {
      ++stats.replies;
      still_on_path = rep.type == wire::Icmp6Type::kTimeExceeded;
      if (cfg_.neighborhood && rep.probe.ttl <= cfg_.max_ttl &&
          seen_at_ttl[rep.probe.ttl].insert(rep.responder).second)
        last_new_us[rep.probe.ttl] = net.now_us();
      if (sink) sink(rep);
    };

    ++stats.probes_sent;
    bool answered = send_probe(net, cfg_, target, ttl, wrapped);
    net.advance_us(gap_us);

    // Fill mode: responses at the probing horizon extend the trace one hop
    // at a time. Fills are sequential but rare and at the path tail, where
    // per-router load is minimal (paper §4.1).
    if (cfg_.fill_mode && ttl == cfg_.max_ttl) {
      std::uint8_t h = cfg_.max_ttl;
      while (answered && still_on_path && h < cfg_.fill_cap) {
        ++h;
        ++stats.probes_sent;
        ++stats.fills;
        answered = send_probe(net, cfg_, target, h, wrapped);
        net.advance_us(gap_us);
      }
    }
  }
  stats.elapsed_virtual_us = net.now_us() - start;
  return stats;
}

}  // namespace beholder6::prober
