// prober/yarrp6.hpp — the paper's prober (§4.1).
//
// Yarrp6 walks the (target × TTL) space in a keyed random permutation,
// pacing uniformly at the configured pps. It keeps *no per-trace state*:
// everything needed to interpret a reply rides inside the probe and comes
// back in the ICMPv6 quotation. Two optional enhancements from the paper:
//
//   fill mode      — when a response arrives for a probe with hop limit
//                    h >= max_ttl, immediately probe the same target at
//                    h+1 (sequential, but rare and at the path tail),
//                    up to an absolute hop cap.
//   neighborhood   — Doubletree-flavored local heuristic: for TTLs at or
//                    below a threshold, stop probing a TTL whose recent
//                    probes stopped yielding *new* interface addresses.
#pragma once

#include <unordered_set>

#include "netbase/permutation.hpp"
#include "prober/prober.hpp"

namespace beholder6::prober {

struct Yarrp6Config : ProbeConfig {
  std::uint64_t permutation_key = 0x59a9;
  /// Sharding for multi-vantage campaigns: this instance walks permuted
  /// indices shard, shard+shard_count, ... so k vantages with the same key
  /// and shard_count=k partition the probe space exactly.
  std::uint64_t shard = 0;
  std::uint64_t shard_count = 1;
  bool fill_mode = false;
  std::uint8_t fill_cap = 32;      // absolute hop-limit ceiling for fills
  bool neighborhood = false;
  std::uint8_t neighborhood_ttl = 3;     // TTLs <= this may be skipped
  std::uint64_t neighborhood_window_us = 2'000'000;  // staleness window
};

class Yarrp6Prober {
 public:
  explicit Yarrp6Prober(Yarrp6Config cfg) : cfg_(cfg) {}

  /// Probe every (target, ttl) pair in permuted order; returns stats.
  ProbeStats run(simnet::Network& net, const std::vector<Ipv6Addr>& targets,
                 const ResponseSink& sink);

  [[nodiscard]] const Yarrp6Config& config() const { return cfg_; }

 private:
  Yarrp6Config cfg_;
};

}  // namespace beholder6::prober
