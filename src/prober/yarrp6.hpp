// prober/yarrp6.hpp — the paper's prober (§4.1), as a campaign ProbeSource.
//
// Yarrp6 walks the (target × TTL) space in a keyed random permutation,
// paced uniformly at the configured pps. It keeps *no per-trace state*:
// everything needed to interpret a reply rides inside the probe and comes
// back in the ICMPv6 quotation. Two optional enhancements from the paper:
//
//   fill mode      — when a response arrives for a probe with hop limit
//                    h >= max_ttl, immediately probe the same target at
//                    h+1 (sequential, but rare and at the path tail),
//                    up to an absolute hop cap.
//   neighborhood   — Doubletree-flavored local heuristic: for TTLs at or
//                    below a threshold, stop probing a TTL whose recent
//                    probes stopped yielding *new* interface addresses.
//
// Yarrp6Source emits that order through the pull API; Yarrp6Prober is the
// legacy single-campaign facade, now a thin shim over CampaignRunner that
// preserves the old run() signature and its exact probe/clock sequence.
#pragma once

#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "campaign/probe_source.hpp"
#include "netbase/permutation.hpp"
#include "prober/prober.hpp"

namespace beholder6::prober {

struct Yarrp6Config : ProbeConfig {
  std::uint64_t permutation_key = 0x59a9;
  /// Sharding for multi-vantage campaigns: this instance walks permuted
  /// indices shard, shard+shard_count, ... so k vantages with the same key
  /// and shard_count=k partition the probe space exactly.
  std::uint64_t shard = 0;
  std::uint64_t shard_count = 1;
  bool fill_mode = false;
  std::uint8_t fill_cap = 32;      // absolute hop-limit ceiling for fills
  bool neighborhood = false;
  std::uint8_t neighborhood_ttl = 3;     // TTLs <= this may be skipped
  std::uint64_t neighborhood_window_us = 2'000'000;  // staleness window

  /// The pacing this prober's order was designed for.
  [[nodiscard]] campaign::PacingPolicy pacing() const {
    return campaign::PacingPolicy::uniform(pps);
  }
};

/// Pull-based yarrp6 order: permuted (target × TTL) walk with optional
/// fill chains and neighborhood skipping. The targets span must outlive
/// the source.
class Yarrp6Source final : public campaign::ProbeSource {
 public:
  Yarrp6Source(const Yarrp6Config& cfg, std::span<const Ipv6Addr> targets)
      : cfg_(cfg), targets_(targets) {}

  void begin(std::uint64_t now_us) override;
  campaign::Poll next(std::uint64_t now_us) override;
  void on_reply(const campaign::Probe& probe, const wire::DecodedReply& reply,
                std::uint64_t now_us) override;
  void on_probe_done(const campaign::Probe& probe, bool answered,
                     std::uint64_t now_us) override;
  void finish(campaign::ProbeStats& stats) const override;
  [[nodiscard]] std::optional<Ipv6Addr> next_target_hint() const override;
  /// Every probe targets one of the configured addresses (fill probes
  /// included — they re-walk a target's path), so the target list is the
  /// exact route-warmup set.
  [[nodiscard]] std::span<const Ipv6Addr> route_warm_targets() const override {
    return targets_;
  }

  /// Deterministic over-decomposition by stride multiplication — the same
  /// math that backs shard/shard_count: child i of k walks permuted indices
  /// shard + i·shard_count, stepping by shard_count·k. For a full walk
  /// (shard 0 of 1), split(k) therefore *is* the classic shard/shard_count
  /// partition: child i ≡ {shard = i, shard_count = k}. Children jointly
  /// visit exactly the parent's cells; fill chains ride inside the child
  /// that emitted the horizon probe (as they already do across manual
  /// shards), and neighborhood bookkeeping is child-private — which is why
  /// k is part of the campaign spec, not a free performance knob. Child 0
  /// alone reports the shared trace count, so parent-level stats fold to
  /// the unsplit value. k clamps to the walk's remaining position count
  /// (children past it would be born exhausted); 0 or 1 positions report
  /// unsplittable.
  [[nodiscard]] std::vector<std::unique_ptr<campaign::ProbeSource>> split(
      std::uint64_t k) const override;

 private:
  Yarrp6Config cfg_;
  bool report_traces_ = true;  // split(): only child 0 reports traces
  std::span<const Ipv6Addr> targets_;
  std::optional<Permutation> perm_;
  std::uint64_t domain_ = 0;
  std::uint64_t index_ = 0;
  std::uint64_t stride_ = 1;
  bool exhausted_ = false;
  // Fill-chain state: at most one pending fill probe at a time.
  bool fill_pending_ = false;
  Ipv6Addr fill_target_;
  std::uint8_t fill_ttl_ = 0;
  bool still_on_path_ = false;  // last reply was Time Exceeded
  // Look-ahead state: the next permuted position, resolved one poll early
  // so its target line is in cache (and hintable) before it is needed.
  bool pending_valid_ = false;
  std::uint64_t pending_v_ = 0;
  // Neighborhood-mode bookkeeping, indexed by TTL.
  std::uint64_t skips_ = 0;
  std::vector<std::uint64_t> last_new_us_;
  std::vector<std::unordered_set<Ipv6Addr, Ipv6AddrHash>> seen_at_ttl_;
};

/// Legacy facade: one full campaign per run() call, driven by an internal
/// CampaignRunner. Probe order, clock advancement and stats are identical
/// to the pre-engine implementation.
class Yarrp6Prober {
 public:
  explicit Yarrp6Prober(const Yarrp6Config& cfg) : cfg_(cfg) {}

  /// Probe every (target, ttl) pair in permuted order; returns stats.
  ProbeStats run(simnet::Network& net, const std::vector<Ipv6Addr>& targets,
                 const ResponseSink& sink);

  [[nodiscard]] const Yarrp6Config& config() const { return cfg_; }

 private:
  Yarrp6Config cfg_;
};

}  // namespace beholder6::prober
