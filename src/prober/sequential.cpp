#include "prober/sequential.hpp"

#include <algorithm>

#include "campaign/runner.hpp"

namespace beholder6::prober {

void SequentialSource::begin(std::uint64_t) {
  window_ = cfg_.effective_window();
  if (targets_.empty() || cfg_.max_ttl == 0) {
    exhausted_ = true;
    return;
  }
  base_ = 0;
  start_window();
}

void SequentialSource::start_window() {
  if (base_ >= targets_.size()) {
    exhausted_ = true;
    return;
  }
  count_ = std::min(window_, targets_.size() - base_);
  state_.assign(count_, {});
  ttl_ = 1;
  idx_ = 0;
}

campaign::Poll SequentialSource::next(std::uint64_t) {
  if (exhausted_) return campaign::Poll::exhausted();
  while (idx_ < count_ && state_[idx_].done) ++idx_;
  if (idx_ < count_) {
    current_ = idx_++;
    terminal_ = false;
    round_open_ = true;
    return campaign::Poll::emit({targets_[base_ + current_], ttl_, false});
  }
  // Lockstep round complete: advance to the next TTL round, or the next
  // window once every trace is done or the TTL horizon is reached; then
  // let the pacer idle out this round's rate budget.
  if (round_open_) {
    round_open_ = false;
    const bool all_done = std::all_of(state_.begin(), state_.end(),
                                      [](const TraceState& s) { return s.done; });
    if (all_done || ttl_ == cfg_.max_ttl) {
      base_ += window_;
      start_window();
    } else {
      ++ttl_;
      idx_ = 0;
    }
    return campaign::Poll::round_end();
  }
  exhausted_ = true;
  return campaign::Poll::exhausted();
}

void SequentialSource::on_reply(const campaign::Probe&,
                                const wire::DecodedReply& reply, std::uint64_t) {
  // A response from the destination itself (or any non-TE terminal)
  // completes this trace.
  terminal_ = reply.type != wire::Icmp6Type::kTimeExceeded ||
              reply.responder == targets_[base_ + current_];
}

void SequentialSource::on_probe_done(const campaign::Probe&, bool answered,
                                     std::uint64_t) {
  auto& s = state_[current_];
  if (terminal_) s.done = true;
  if (!answered && ++s.gaps >= cfg_.gap_limit) s.done = true;
  if (answered) s.gaps = 0;
}

void SequentialSource::finish(campaign::ProbeStats& stats) const {
  stats.traces = targets_.size();
}

std::vector<std::unique_ptr<campaign::ProbeSource>> SequentialSource::split(
    std::uint64_t k) const {
  std::vector<std::unique_ptr<campaign::ProbeSource>> children;
  if (k <= 1 || targets_.size() <= 1) return children;
  const std::uint64_t n = targets_.size();
  const std::uint64_t pieces = std::min<std::uint64_t>(k, n);
  children.reserve(pieces);
  for (std::uint64_t i = 0; i < pieces; ++i) {
    const auto lo = static_cast<std::size_t>(i * n / pieces);
    const auto hi = static_cast<std::size_t>((i + 1) * n / pieces);
    children.push_back(
        std::make_unique<SequentialSource>(cfg_, targets_.subspan(lo, hi - lo)));
  }
  return children;
}

ProbeStats SequentialProber::run(simnet::Network& net,
                                 const std::vector<Ipv6Addr>& targets,
                                 const ResponseSink& sink) {
  SequentialSource source{cfg_, targets};
  return campaign::CampaignRunner::run_one(net, source, cfg_.endpoint(),
                                           cfg_.pacing(), sink);
}

}  // namespace beholder6::prober
