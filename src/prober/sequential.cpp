#include "prober/sequential.hpp"

#include <algorithm>

namespace beholder6::prober {

ProbeStats SequentialProber::run(simnet::Network& net,
                                 const std::vector<Ipv6Addr>& targets,
                                 const ResponseSink& sink) {
  ProbeStats stats;
  stats.traces = targets.size();
  const std::uint64_t start = net.now_us();
  const double pps = cfg_.pps > 0 ? cfg_.pps : 1.0;
  const std::size_t window =
      cfg_.window ? cfg_.window
                  : std::max<std::size_t>(1, static_cast<std::size_t>(pps * 0.05));

  struct TraceState {
    bool done = false;
    std::uint8_t gaps = 0;
  };

  for (std::size_t base = 0; base < targets.size(); base += window) {
    const std::size_t n = std::min(window, targets.size() - base);
    std::vector<TraceState> state(n);
    for (std::uint8_t ttl = 1; ttl <= cfg_.max_ttl; ++ttl) {
      std::size_t sent_in_round = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (state[i].done) continue;
        const auto& target = targets[base + i];
        bool terminal = false;
        auto wrapped = [&](const wire::DecodedReply& rep) {
          ++stats.replies;
          // Response from the destination itself (or any non-TE terminal)
          // completes this trace.
          terminal = rep.type != wire::Icmp6Type::kTimeExceeded ||
                     rep.responder == target;
          if (sink) sink(rep);
        };
        ++stats.probes_sent;
        ++sent_in_round;
        const bool answered = send_probe(net, cfg_, target, ttl, wrapped);
        net.advance_us(cfg_.line_rate_gap_us);  // in-burst: line rate
        if (terminal) state[i].done = true;
        if (!answered && ++state[i].gaps >= cfg_.gap_limit) state[i].done = true;
        if (answered) state[i].gaps = 0;
      }
      // Idle out the rest of the round so the average rate stays at pps.
      const auto budget_us =
          static_cast<std::uint64_t>(static_cast<double>(sent_in_round) * 1e6 / pps);
      const auto spent_us = sent_in_round * cfg_.line_rate_gap_us;
      if (budget_us > spent_us) net.advance_us(budget_us - spent_us);
      if (std::all_of(state.begin(), state.end(),
                      [](const TraceState& s) { return s.done; }))
        break;
    }
  }
  stats.elapsed_virtual_us = net.now_us() - start;
  return stats;
}

}  // namespace beholder6::prober
