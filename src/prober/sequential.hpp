// prober/sequential.hpp — a scamper-like sequential ICMP-Paris prober.
//
// The state-of-the-art baseline the paper measures against (Figure 5). It
// traces a window of destinations in lockstep: all traces send their TTL-1
// probes, then their TTL-2 probes, and so on. Because the window stays
// synchronized, each TTL round hits the shared near-vantage routers as a
// back-to-back burst — the "per-TTL bursty behavior" the paper identifies
// in packet captures as the cause of sequential probing's rate-limiting
// losses. Pacing: bursts go out at line rate, then the prober idles to hold
// the configured average pps.
//
// Paris invariants are inherited from the probe codec (constant header
// fields per target), and per-trace state lets it stop early at the
// destination or after `gap_limit` consecutive silent hops — the classic
// traceroute optimizations yarrp6 deliberately gives up.
#pragma once

#include "prober/prober.hpp"

namespace beholder6::prober {

struct SequentialConfig : ProbeConfig {
  /// Traces probed in lockstep per window; 0 derives it from pps (50 ms of
  /// probes, minimum 1), which is how the burstiness scales with rate.
  std::size_t window = 0;
  std::uint8_t gap_limit = 5;   // stop a trace after this many silent hops
  std::uint64_t line_rate_gap_us = 1;  // in-burst inter-packet gap
};

class SequentialProber {
 public:
  explicit SequentialProber(SequentialConfig cfg) : cfg_(cfg) {}

  ProbeStats run(simnet::Network& net, const std::vector<Ipv6Addr>& targets,
                 const ResponseSink& sink);

  [[nodiscard]] const SequentialConfig& config() const { return cfg_; }

 private:
  SequentialConfig cfg_;
};

}  // namespace beholder6::prober
