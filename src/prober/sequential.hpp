// prober/sequential.hpp — a scamper-like sequential ICMP-Paris prober.
//
// The state-of-the-art baseline the paper measures against (Figure 5). It
// traces a window of destinations in lockstep: all traces send their TTL-1
// probes, then their TTL-2 probes, and so on. Because the window stays
// synchronized, each TTL round hits the shared near-vantage routers as a
// back-to-back burst — the "per-TTL bursty behavior" the paper identifies
// in packet captures as the cause of sequential probing's rate-limiting
// losses. Pacing: bursts go out at line rate, then the prober idles to hold
// the configured average pps (campaign::PacingPolicy::burst).
//
// Paris invariants are inherited from the probe codec (constant header
// fields per target), and per-trace state lets it stop early at the
// destination or after `gap_limit` consecutive silent hops — the classic
// traceroute optimizations yarrp6 deliberately gives up. SequentialSource
// expresses that order through the pull API; SequentialProber is the
// legacy one-campaign shim.
#pragma once

#include <span>
#include <vector>

#include "campaign/probe_source.hpp"
#include "prober/prober.hpp"

namespace beholder6::prober {

/// Plain lockstep tracing needs nothing beyond the shared window config.
struct SequentialConfig : LockstepConfig {};

/// Pull-based lockstep order: per window, one round per TTL; a round
/// boundary after each TTL sweep lets the pacer idle out the rate budget.
class SequentialSource final : public campaign::ProbeSource {
 public:
  SequentialSource(const SequentialConfig& cfg, std::span<const Ipv6Addr> targets)
      : cfg_(cfg), targets_(targets) {}

  void begin(std::uint64_t now_us) override;
  campaign::Poll next(std::uint64_t now_us) override;
  void on_reply(const campaign::Probe& probe, const wire::DecodedReply& reply,
                std::uint64_t now_us) override;
  void on_probe_done(const campaign::Probe& probe, bool answered,
                     std::uint64_t now_us) override;
  void finish(campaign::ProbeStats& stats) const override;
  /// All probes target the configured list, so it is the exact warmup set.
  [[nodiscard]] std::span<const Ipv6Addr> route_warm_targets() const override {
    return targets_;
  }

  /// Deterministic over-decomposition by target range: child i of k traces
  /// the i-th contiguous slice of the target list (balanced to within one
  /// target), with the parent's window/pacing config. Per-trace state never
  /// crosses targets, so the children jointly trace exactly the parent's
  /// list — but window boundaries restart per child, which is why k is part
  /// of the campaign spec. Fewer than two targets: unsplittable (empty).
  [[nodiscard]] std::vector<std::unique_ptr<campaign::ProbeSource>> split(
      std::uint64_t k) const override;

 private:
  struct TraceState {
    bool done = false;
    std::uint8_t gaps = 0;
  };

  void start_window();

  SequentialConfig cfg_;
  std::span<const Ipv6Addr> targets_;
  std::size_t window_ = 1;
  std::size_t base_ = 0;       // first trace of the current window
  std::size_t count_ = 0;      // traces in the current window
  std::vector<TraceState> state_;
  std::uint8_t ttl_ = 1;       // current lockstep round
  std::size_t idx_ = 0;        // next trace to consider this round
  std::size_t current_ = 0;    // trace of the probe in flight
  bool round_open_ = false;    // a probe was emitted since the last RoundEnd
  bool terminal_ = false;      // in-flight probe drew a terminal response
  bool exhausted_ = false;
};

/// Legacy facade preserving the old run() signature and exact behaviour.
class SequentialProber {
 public:
  explicit SequentialProber(const SequentialConfig& cfg) : cfg_(cfg) {}

  ProbeStats run(simnet::Network& net, const std::vector<Ipv6Addr>& targets,
                 const ResponseSink& sink);

  [[nodiscard]] const SequentialConfig& config() const { return cfg_; }

 private:
  SequentialConfig cfg_;
};

}  // namespace beholder6::prober
