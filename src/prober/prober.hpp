// prober/prober.hpp — common prober vocabulary.
//
// All three probers (yarrp6, sequential/scamper-like, Doubletree) are
// implemented as campaign::ProbeSource order generators driven by the
// campaign::CampaignRunner, which owns pacing, injection, reply dispatch
// and statistics. The differences between them — probe *order* and clock
// *pacing* — are exactly the variables the paper's §4.2 experiments
// isolate. This header re-exports the shared campaign vocabulary under the
// legacy prober:: names and keeps the one-shot send_probe helper.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "campaign/probe_source.hpp"
#include "netbase/ipv6.hpp"
#include "simnet/network.hpp"
#include "wire/probe.hpp"

namespace beholder6::prober {

/// Called for every decoded reply, in arrival order.
using ResponseSink = campaign::ResponseSink;

/// What a probing campaign reports about itself.
using ProbeStats = campaign::ProbeStats;

/// Base configuration shared by all probers.
struct ProbeConfig {
  Ipv6Addr src;                       // vantage source address
  wire::Proto proto = wire::Proto::kIcmp6;
  std::uint8_t max_ttl = 16;
  double pps = 1000.0;                // average probing rate
  std::uint8_t instance = 1;

  /// The wire identity the campaign engine emits probes with.
  [[nodiscard]] campaign::Endpoint endpoint() const {
    return campaign::Endpoint{src, proto, instance};
  }
};

/// Shared configuration of the lockstep (windowed, burst-paced) probers:
/// sequential and Doubletree both trace a window of destinations in
/// synchronized rounds at line rate, idling between rounds to hold pps.
struct LockstepConfig : ProbeConfig {
  /// Traces probed in lockstep per window; 0 derives it from pps (50 ms of
  /// probes, minimum 1), which is how the burstiness scales with rate.
  std::size_t window = 0;
  std::uint8_t gap_limit = 5;   // stop a trace after this many silent hops
  std::uint64_t line_rate_gap_us = 1;  // in-burst inter-packet gap

  [[nodiscard]] std::size_t effective_window() const {
    const double rate = pps > 0 ? pps : 1.0;
    return window ? window
                  : std::max<std::size_t>(1, static_cast<std::size_t>(rate * 0.05));
  }
  [[nodiscard]] campaign::PacingPolicy pacing() const {
    return campaign::PacingPolicy::burst(pps, line_rate_gap_us);
  }
};

/// Encode, inject and decode one probe; returns true if a reply came back
/// (the reply is forwarded to `sink` first). Pacing is the caller's job.
bool send_probe(simnet::Network& net, const ProbeConfig& cfg, const Ipv6Addr& target,
                std::uint8_t ttl, const ResponseSink& sink);

}  // namespace beholder6::prober
