// prober/prober.hpp — common prober vocabulary.
//
// All three probers (yarrp6, sequential/scamper-like, Doubletree) emit
// wire-format probes into a simnet::Network, advance the virtual clock to
// realize their target probing rate, and feed decoded replies to a sink.
// The differences between them — probe *order* and clock *pacing* — are
// exactly the variables the paper's §4.2 experiments isolate.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "netbase/ipv6.hpp"
#include "simnet/network.hpp"
#include "wire/probe.hpp"

namespace beholder6::prober {

/// Called for every decoded reply, in arrival order.
using ResponseSink = std::function<void(const wire::DecodedReply&)>;

/// What a probing campaign reports about itself.
struct ProbeStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t replies = 0;
  std::uint64_t fills = 0;           // yarrp6 fill-mode probes
  std::uint64_t neighborhood_skips = 0;  // yarrp6 neighborhood-mode skips
  std::uint64_t traces = 0;          // number of distinct targets probed
  std::uint64_t elapsed_virtual_us = 0;
};

/// Base configuration shared by all probers.
struct ProbeConfig {
  Ipv6Addr src;                       // vantage source address
  wire::Proto proto = wire::Proto::kIcmp6;
  std::uint8_t max_ttl = 16;
  double pps = 1000.0;                // average probing rate
  std::uint8_t instance = 1;
};

/// Encode, pace, inject and decode one probe; returns true if a reply came
/// back (the reply is forwarded to `sink` first).
bool send_probe(simnet::Network& net, const ProbeConfig& cfg, const Ipv6Addr& target,
                std::uint8_t ttl, const ResponseSink& sink);

}  // namespace beholder6::prober
