// prober/multivantage.hpp — coordinated multi-vantage campaigns (the
// paper's §7.2 future work: "leverage our methodology across a large number
// of vantages ... to provide even greater scope and coverage").
//
// All vantages share one permutation key and partition the (target × TTL)
// space by shard index, so the union of their probes covers the space
// exactly once: aggregate probing cost equals a single-vantage campaign,
// while each router sees 1/k of the per-vantage load (the rate-limiting
// benefit compounds) and destination-side hops are observed from several
// directions (which is also what exposes router aliases).
#pragma once

#include <vector>

#include "prober/yarrp6.hpp"
#include "topology/collector.hpp"

namespace beholder6::prober {

struct MultiVantageResult {
  topology::TraceCollector collector;       // merged across vantages
  std::vector<ProbeStats> per_vantage;      // parallel to the vantage list
  [[nodiscard]] std::uint64_t total_probes() const {
    std::uint64_t n = 0;
    for (const auto& s : per_vantage) n += s.probes_sent;
    return n;
  }
};

/// Run one sharded campaign: vantage i probes shard i of the permuted
/// space through the shared network (shared rate-limiter state — the
/// vantages really do coexist).
[[nodiscard]] MultiVantageResult run_multi_vantage(
    simnet::Network& net, const std::vector<simnet::VantageInfo>& vantages,
    const std::vector<Ipv6Addr>& targets, Yarrp6Config base_cfg);

}  // namespace beholder6::prober
