// prober/multivantage.hpp — coordinated multi-vantage campaigns (the
// paper's §7.2 future work: "leverage our methodology across a large number
// of vantages ... to provide even greater scope and coverage").
//
// All vantages share one permutation key and partition the (target × TTL)
// space by shard index, so the union of their probes covers the space
// exactly once: aggregate probing cost equals a single-vantage campaign,
// while each router sees 1/k of the per-vantage load (the rate-limiting
// benefit compounds) and destination-side hops are observed from several
// directions (which is also what exposes router aliases).
//
// Built on the campaign engine: every vantage is one Yarrp6Source added to
// one CampaignRunner over one shared simnet::Network (shared rate-limiter
// state — the vantages really do coexist). Two schedules:
//
//   sequential  — vantages run one after another in virtual time, each at
//                 its configured pps (the paper's actual operation: the
//                 same campaign launched from each vantage). Default.
//   interleaved — all vantages share the event queue and probe
//                 concurrently in virtual time, k·pps aggregate — the
//                 truly simultaneous deployment the engine makes
//                 first-class.
//   parallel    — n_threads > 0: every vantage runs on its own OS thread
//                 over a private Network replica (campaign::
//                 ParallelCampaignRunner), the physically distributed
//                 deployment. Per-vantage results and the merged collector
//                 are bit-identical for any thread count.
#pragma once

#include <vector>

#include "campaign/parallel.hpp"
#include "campaign/runner.hpp"
#include "prober/yarrp6.hpp"
#include "topology/collector.hpp"

namespace beholder6::prober {

struct MultiVantageOptions {
  /// Run all vantages through one event queue, concurrently in virtual
  /// time. Off by default: sequential scheduling preserves the classic
  /// per-vantage pacing profile (and its rate-limiter interaction).
  bool interleave = false;
  /// 0: classic schedules above, on the caller's (shared) network. > 0:
  /// the sharded parallel backend — one worker thread pool of this size,
  /// one Network replica per vantage (replicated from the caller's
  /// topology and params; the caller's network state is untouched). The
  /// thread count changes wall-clock only, never results; `interleave` is
  /// ignored, as replica shards are independent by construction.
  unsigned n_threads = 0;
  /// Parallel backend only (n_threads > 0): over-decompose every vantage's
  /// walk into this many deterministic subshards
  /// (campaign::ParallelRunOptions::split_factor), so fewer vantages than
  /// threads still fill the pool. Part of the campaign spec, like the
  /// vantage count: results are thread-count-invariant at any fixed value.
  std::uint64_t split_factor = 1;
};

struct MultiVantageResult {
  topology::TraceCollector collector;       // merged across vantages
  std::vector<ProbeStats> per_vantage;      // parallel to the vantage list
  [[nodiscard]] std::uint64_t total_probes() const {
    std::uint64_t n = 0;
    for (const auto& s : per_vantage) n += s.probes_sent;
    return n;
  }
};

/// Run one sharded campaign: vantage i probes shard i of the permuted
/// space through the shared network.
[[nodiscard]] MultiVantageResult run_multi_vantage(
    simnet::Network& net, const std::vector<simnet::VantageInfo>& vantages,
    const std::vector<Ipv6Addr>& targets, Yarrp6Config base_cfg,
    const MultiVantageOptions& options = {});

}  // namespace beholder6::prober
