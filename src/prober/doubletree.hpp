// prober/doubletree.hpp — Doubletree (Donnet et al., SIGMETRICS 2005) as a
// baseline (paper §4.2).
//
// Doubletree starts each trace at an intermediate TTL h0 and probes
// *forward* until the destination (or gap limit), then *backward* toward
// the vantage, stopping early when it hits an interface already in the
// global stop set — exploiting the tree-like redundancy of initial hops.
//
// The paper observes a pathology under ICMPv6 rate limiting which this
// implementation reproduces faithfully: when a near-vantage hop is
// rate-limited into silence, its address never enters the stop set, so
// backward probing keeps hammering precisely the drained routers and they
// never recover. Doubletree also needs h0 tuned per vantage, and its
// stop-set inference can graft stale path segments — both discussed as
// fundamental limitations in the paper.
//
// DoubletreeSource emits the lockstep forward/backward order through the
// pull API (burst pacing, like the sequential prober); DoubletreeProber is
// the legacy one-campaign shim and keeps the cross-campaign stop set.
//
// Sub-shard parallelism: the stop set used to make Doubletree the one
// unsplittable ProbeSource (every trace reads and grows shared feedback
// state). split(k) now returns a real partition by layering the stop set
// as an epoch-snapshotted family — see SnapshotStopSet below for the full
// semantics contract, and docs/ARCHITECTURE.md "Epoch-snapshotted
// Doubletree" for the guided version.
#pragma once

#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "campaign/probe_source.hpp"
#include "netbase/flat_map.hpp"
#include "prober/prober.hpp"

namespace beholder6::prober {

/// Doubletree knobs on top of the shared lockstep (windowed, burst-paced)
/// configuration: the intermediate start TTL h0 the forward phase opens
/// at, and the epoch length its split children synchronize on.
struct DoubletreeConfig : LockstepConfig {
  std::uint8_t start_ttl = 6;   // h0: heuristic, per-vantage (paper's gripe)
  /// Epoch length of a split family, in completed traces per child; 0
  /// derives it from the effective window (one window batch per epoch).
  /// Like split_factor it is campaign spec: results are a pure function of
  /// (config, split k, epoch length) and thread-count invariant at any
  /// fixed value. Irrelevant to an unsplit source, which has no epochs.
  std::size_t epoch_traces = 0;
};

/// Shared stop-set type: interfaces already observed by some trace. This
/// is the *legacy, serial* form — one mutable set read and grown by every
/// trace as it runs, shareable across campaigns (DoubletreeProber keeps
/// one across run() calls, Doubletree's original cooperating-monitor
/// design). Split families use SnapshotStopSet instead and publish back
/// into this set when they finish.
using StopSet = std::unordered_set<Ipv6Addr, Ipv6AddrHash>;

/// Epoch-snapshotted stop set: the shared state of a split Doubletree
/// family, and the campaign::EpochBarrier that merges it.
///
/// Semantics contract (the "defined semantics" the ROADMAP asked for):
///
///   * The set is layered as one immutable *frozen epoch set* plus one
///     private *write delta* per child. During epoch N, child j reads
///     "frozen ∪ delta j" and writes only delta j — so siblings never
///     observe each other's discoveries mid-epoch, and no cross-thread
///     synchronization happens on the probe path.
///   * merge_epoch() — called by the parallel backend's barrier, single
///     threaded, with every child paused or exhausted — folds the deltas
///     into the frozen set in canonical child order (child 0 first),
///     clears them, and opens epoch N+1.
///   * Everything is therefore a pure function of (parent config, split k,
///     epoch length): the probe streams of a family are bit-identical at
///     any worker-thread count, and changing k or the epoch length is a
///     deterministic respecification, exactly like split_factor itself.
///   * Serial fixpoint: with k = 1 the sole child reads "frozen ∪ its own
///     delta", which is every insertion ever made — so a single-child
///     family reproduces the legacy serial stop set byte-for-byte at ANY
///     epoch length, including the degenerate epoch of one trace.
///   * The paper's rate-limiting pathology is preserved per epoch: a
///     rate-limited hop answers nothing, so it enters no delta and no
///     frozen set, and backward probing keeps draining it — within an
///     epoch by the same trace window, and across epochs forever.
///   * When the last child exhausts, the final barrier merge publishes the
///     union into the legacy StopSet the parent was constructed over, so
///     cross-campaign accumulation (DoubletreeProber::stop_set_size) sees
///     the same aggregate a serial run would have produced.
///
/// Storage is netbase::FlatSet (open addressing, no per-node allocations):
/// reads on the probe path are one hash probe into the frozen table and at
/// most one into the child's delta. Only set *membership* is ever
/// observable, so FlatSet's layout-dependent iteration order cannot leak
/// into results.
class SnapshotStopSet final : public campaign::EpochBarrier {
 public:
  /// A family over `children` deltas, frozen-set-seeded from `initial`,
  /// publishing back into `publish` (may be null) once every child has
  /// exhausted.
  SnapshotStopSet(const StopSet& initial, std::size_t children,
                  StopSet* publish);

  /// Child-side write: insert `addr` as child `child`; returns true if the
  /// address was already visible to that child (frozen epoch set or its
  /// own delta) — the exact "was known" answer the serial stop set gives.
  bool insert(std::size_t child, const Ipv6Addr& addr);

  /// Child-side read: is `addr` visible to `child` this epoch?
  [[nodiscard]] bool contains(std::size_t child, const Ipv6Addr& addr) const;

  /// Child `child` has exhausted its slice; once every child has, the next
  /// merge_epoch() publishes the union into the legacy StopSet.
  void mark_exhausted(std::size_t child);

  /// The barrier merge (campaign::EpochBarrier): fold deltas into the
  /// frozen set in canonical child order, clear them, open the next epoch.
  void merge_epoch() override;

  /// Completed barrier merges so far (the current epoch number).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_no_; }
  /// Size of the frozen epoch set (excludes unmerged deltas).
  [[nodiscard]] std::size_t frozen_size() const { return frozen_.size(); }
  /// Number of child deltas in the family.
  [[nodiscard]] std::size_t children() const { return deltas_.size(); }

 private:
  using Flat = netbase::FlatSet<Ipv6Addr, Ipv6AddrHash>;
  /// One child's private epoch delta. Cache-line aligned so concurrent
  /// children never false-share each other's table headers.
  struct alignas(64) Delta {
    Flat inserts;
    bool exhausted = false;
  };

  Flat frozen_;                // immutable during an epoch
  std::vector<Delta> deltas_;  // delta j written only by child j
  StopSet* publish_;           // legacy set to fold into at the end
  std::uint64_t epoch_no_ = 0;
  bool published_ = false;
};

/// Pull-based Doubletree order. The stop set is held by reference so it
/// can outlive one campaign (and be shared between cooperating sources —
/// Doubletree's original distributed-monitor design).
///
/// Splitting: split(k) partitions the target list into contiguous,
/// balanced slices (like SequentialSource) whose children share one
/// SnapshotStopSet seeded from the parent's current stop set — an
/// epoch-coupled family under the campaign::EpochBarrier protocol. Each
/// child pauses at the first window-batch boundary where at least
/// DoubletreeConfig::epoch_traces of its traces have completed since its
/// epoch opened, and resumes after the family's canonical delta merge.
/// See SnapshotStopSet for the full semantics contract.
class DoubletreeSource final : public campaign::ProbeSource {
 public:
  DoubletreeSource(const DoubletreeConfig& cfg, std::span<const Ipv6Addr> targets,
                   StopSet& stop_set)
      : cfg_(cfg), targets_(targets), legacy_(&stop_set) {}

  void begin(std::uint64_t now_us) override;
  campaign::Poll next(std::uint64_t now_us) override;
  void on_reply(const campaign::Probe& probe, const wire::DecodedReply& reply,
                std::uint64_t now_us) override;
  void on_probe_done(const campaign::Probe& probe, bool answered,
                     std::uint64_t now_us) override;
  void finish(campaign::ProbeStats& stats) const override;
  /// Forward and backward probes alike target the configured list, so it
  /// is the exact warmup set (stop-set pruning only shrinks what is hit).
  [[nodiscard]] std::span<const Ipv6Addr> route_warm_targets() const override {
    return targets_;
  }

  /// Deterministic over-decomposition as an epoch-snapshotted family:
  /// child i of k traces the i-th contiguous slice of the target list
  /// (balanced to within one target, clamped to one target per child),
  /// all children sharing one SnapshotStopSet seeded from the parent's
  /// stop set. A pure function of (config, k); k = 1 yields one child
  /// that reproduces the serial source byte-for-byte. Children are not
  /// themselves splittable, and an empty target list is unsplittable.
  [[nodiscard]] std::vector<std::unique_ptr<campaign::ProbeSource>> split(
      std::uint64_t k) const override;

  /// Epoch coupling (campaign::ProbeSource protocol): children report
  /// their family's SnapshotStopSet; a legacy serial source reports none.
  [[nodiscard]] campaign::EpochBarrier* epoch_barrier() const override {
    return snap_.get();
  }
  [[nodiscard]] bool epoch_paused() const override { return epoch_paused_; }
  void epoch_resume() override { epoch_paused_ = false; }

 private:
  enum class Phase : std::uint8_t { kForward, kBackward, kDone };
  struct TraceState {
    Phase phase = Phase::kForward;
    std::uint8_t fwd_ttl = 0;
    std::uint8_t bwd_ttl = 0;
    std::uint8_t gaps = 0;
  };
  // Which step of trace idx_ the next poll considers.
  enum class Step : std::uint8_t { kForward, kBackward, kAdvance };

  /// Epoch-family child over slice `targets`, reading/writing `snap` as
  /// child `child`. Only split() constructs these.
  DoubletreeSource(const DoubletreeConfig& cfg, std::span<const Ipv6Addr> targets,
                   std::shared_ptr<SnapshotStopSet> snap, std::size_t child)
      : cfg_(cfg), targets_(targets), snap_(std::move(snap)), child_(child) {}

  void start_window();
  /// Record `addr` in the stop set (legacy or snapshot view); returns true
  /// if it was already known to this source.
  bool stop_insert(const Ipv6Addr& addr);

  DoubletreeConfig cfg_;
  std::span<const Ipv6Addr> targets_;
  StopSet* legacy_ = nullptr;             // serial mode: the shared set
  std::shared_ptr<SnapshotStopSet> snap_; // family mode: the epoch view
  std::size_t child_ = 0;                 // this child's delta index
  std::size_t window_ = 1;
  std::size_t base_ = 0;
  std::size_t count_ = 0;
  std::vector<TraceState> state_;
  std::size_t idx_ = 0;
  Step step_ = Step::kForward;
  bool progress_ = false;       // some probe went out this round
  bool fwd_in_flight_ = false;  // direction of the probe in flight
  bool terminal_ = false;
  bool hit_stop_set_ = false;
  bool exhausted_ = false;
  std::size_t epoch_len_ = 0;     // traces per epoch (family mode)
  std::size_t epoch_done_ = 0;    // traces completed this epoch
  bool epoch_paused_ = false;     // at a boundary, awaiting the merge
  bool reported_exhausted_ = false;
};

/// Legacy facade preserving the old run() signature and exact behaviour.
class DoubletreeProber {
 public:
  explicit DoubletreeProber(const DoubletreeConfig& cfg) : cfg_(cfg) {}

  ProbeStats run(simnet::Network& net, const std::vector<Ipv6Addr>& targets,
                 const ResponseSink& sink);

  /// Interfaces accumulated in the global (backward) stop set.
  [[nodiscard]] std::size_t stop_set_size() const { return stop_set_.size(); }

 private:
  DoubletreeConfig cfg_;
  StopSet stop_set_;
};

}  // namespace beholder6::prober
