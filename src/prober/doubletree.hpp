// prober/doubletree.hpp — Doubletree (Donnet et al., SIGMETRICS 2005) as a
// baseline (paper §4.2).
//
// Doubletree starts each trace at an intermediate TTL h0 and probes
// *forward* until the destination (or gap limit), then *backward* toward
// the vantage, stopping early when it hits an interface already in the
// global stop set — exploiting the tree-like redundancy of initial hops.
//
// The paper observes a pathology under ICMPv6 rate limiting which this
// implementation reproduces faithfully: when a near-vantage hop is
// rate-limited into silence, its address never enters the stop set, so
// backward probing keeps hammering precisely the drained routers and they
// never recover. Doubletree also needs h0 tuned per vantage, and its
// stop-set inference can graft stale path segments — both discussed as
// fundamental limitations in the paper.
#pragma once

#include <unordered_set>

#include "prober/prober.hpp"

namespace beholder6::prober {

struct DoubletreeConfig : ProbeConfig {
  std::uint8_t start_ttl = 6;   // h0: heuristic, per-vantage (paper's gripe)
  std::uint8_t gap_limit = 5;
  std::size_t window = 0;       // lockstep window, as in SequentialProber
  std::uint64_t line_rate_gap_us = 1;
};

class DoubletreeProber {
 public:
  explicit DoubletreeProber(DoubletreeConfig cfg) : cfg_(cfg) {}

  ProbeStats run(simnet::Network& net, const std::vector<Ipv6Addr>& targets,
                 const ResponseSink& sink);

  /// Interfaces accumulated in the global (backward) stop set.
  [[nodiscard]] std::size_t stop_set_size() const { return stop_set_.size(); }

 private:
  DoubletreeConfig cfg_;
  std::unordered_set<Ipv6Addr, Ipv6AddrHash> stop_set_;
};

}  // namespace beholder6::prober
