// prober/doubletree.hpp — Doubletree (Donnet et al., SIGMETRICS 2005) as a
// baseline (paper §4.2).
//
// Doubletree starts each trace at an intermediate TTL h0 and probes
// *forward* until the destination (or gap limit), then *backward* toward
// the vantage, stopping early when it hits an interface already in the
// global stop set — exploiting the tree-like redundancy of initial hops.
//
// The paper observes a pathology under ICMPv6 rate limiting which this
// implementation reproduces faithfully: when a near-vantage hop is
// rate-limited into silence, its address never enters the stop set, so
// backward probing keeps hammering precisely the drained routers and they
// never recover. Doubletree also needs h0 tuned per vantage, and its
// stop-set inference can graft stale path segments — both discussed as
// fundamental limitations in the paper.
//
// DoubletreeSource emits the lockstep forward/backward order through the
// pull API (burst pacing, like the sequential prober); DoubletreeProber is
// the legacy one-campaign shim and keeps the cross-campaign stop set.
#pragma once

#include <span>
#include <unordered_set>
#include <vector>

#include "campaign/probe_source.hpp"
#include "prober/prober.hpp"

namespace beholder6::prober {

struct DoubletreeConfig : LockstepConfig {
  std::uint8_t start_ttl = 6;   // h0: heuristic, per-vantage (paper's gripe)
};

/// Shared stop-set type: interfaces already observed by some trace.
using StopSet = std::unordered_set<Ipv6Addr, Ipv6AddrHash>;

/// Pull-based Doubletree order. The stop set is held by reference so it
/// can outlive one campaign (and be shared between cooperating sources —
/// Doubletree's original distributed-monitor design).
class DoubletreeSource final : public campaign::ProbeSource {
 public:
  DoubletreeSource(const DoubletreeConfig& cfg, std::span<const Ipv6Addr> targets,
                   StopSet& stop_set)
      : cfg_(cfg), targets_(targets), stop_set_(stop_set) {}

  void begin(std::uint64_t now_us) override;
  campaign::Poll next(std::uint64_t now_us) override;
  void on_reply(const campaign::Probe& probe, const wire::DecodedReply& reply,
                std::uint64_t now_us) override;
  void on_probe_done(const campaign::Probe& probe, bool answered,
                     std::uint64_t now_us) override;
  void finish(campaign::ProbeStats& stats) const override;

  /// Unsplittable, explicitly: every trace reads and grows the shared stop
  /// set, so any sub-partition run on concurrent replicas would change
  /// which probes are elided — there is no feedback-free cut. Parallel
  /// backends fall back to running a Doubletree shard whole.
  [[nodiscard]] std::vector<std::unique_ptr<campaign::ProbeSource>> split(
      std::uint64_t k) const override {
    (void)k;
    return {};
  }

 private:
  enum class Phase : std::uint8_t { kForward, kBackward, kDone };
  struct TraceState {
    Phase phase = Phase::kForward;
    std::uint8_t fwd_ttl = 0;
    std::uint8_t bwd_ttl = 0;
    std::uint8_t gaps = 0;
  };
  // Which step of trace idx_ the next poll considers.
  enum class Step : std::uint8_t { kForward, kBackward, kAdvance };

  void start_window();

  DoubletreeConfig cfg_;
  std::span<const Ipv6Addr> targets_;
  StopSet& stop_set_;
  std::size_t window_ = 1;
  std::size_t base_ = 0;
  std::size_t count_ = 0;
  std::vector<TraceState> state_;
  std::size_t idx_ = 0;
  Step step_ = Step::kForward;
  bool progress_ = false;       // some probe went out this round
  bool fwd_in_flight_ = false;  // direction of the probe in flight
  bool terminal_ = false;
  bool hit_stop_set_ = false;
  bool exhausted_ = false;
};

/// Legacy facade preserving the old run() signature and exact behaviour.
class DoubletreeProber {
 public:
  explicit DoubletreeProber(const DoubletreeConfig& cfg) : cfg_(cfg) {}

  ProbeStats run(simnet::Network& net, const std::vector<Ipv6Addr>& targets,
                 const ResponseSink& sink);

  /// Interfaces accumulated in the global (backward) stop set.
  [[nodiscard]] std::size_t stop_set_size() const { return stop_set_.size(); }

 private:
  DoubletreeConfig cfg_;
  StopSet stop_set_;
};

}  // namespace beholder6::prober
