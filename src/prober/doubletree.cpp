#include "prober/doubletree.hpp"

#include <algorithm>

namespace beholder6::prober {

ProbeStats DoubletreeProber::run(simnet::Network& net,
                                 const std::vector<Ipv6Addr>& targets,
                                 const ResponseSink& sink) {
  ProbeStats stats;
  stats.traces = targets.size();
  const std::uint64_t start = net.now_us();
  const double pps = cfg_.pps > 0 ? cfg_.pps : 1.0;
  const std::size_t window =
      cfg_.window ? cfg_.window
                  : std::max<std::size_t>(1, static_cast<std::size_t>(pps * 0.05));

  enum class Phase : std::uint8_t { kForward, kBackward, kDone };
  struct TraceState {
    Phase phase = Phase::kForward;
    std::uint8_t fwd_ttl = 0;
    std::uint8_t bwd_ttl = 0;
    std::uint8_t gaps = 0;
  };

  for (std::size_t base = 0; base < targets.size(); base += window) {
    const std::size_t n = std::min(window, targets.size() - base);
    std::vector<TraceState> state(n);
    for (auto& s : state) {
      s.fwd_ttl = cfg_.start_ttl;
      s.bwd_ttl = cfg_.start_ttl > 1 ? static_cast<std::uint8_t>(cfg_.start_ttl - 1) : 0;
    }
    bool progress = true;
    while (progress) {
      progress = false;
      std::size_t sent_in_round = 0;
      for (std::size_t i = 0; i < n; ++i) {
        auto& s = state[i];
        const auto& target = targets[base + i];
        if (s.phase == Phase::kForward) {
          if (s.fwd_ttl > cfg_.max_ttl) {
            s.phase = Phase::kBackward;
          } else {
            bool terminal = false;
            auto wrapped = [&](const wire::DecodedReply& rep) {
              ++stats.replies;
              terminal = rep.type != wire::Icmp6Type::kTimeExceeded ||
                         rep.responder == target;
              stop_set_.insert(rep.responder);
              if (sink) sink(rep);
            };
            ++stats.probes_sent;
            ++sent_in_round;
            const bool answered = send_probe(net, cfg_, target, s.fwd_ttl, wrapped);
            net.advance_us(cfg_.line_rate_gap_us);
            progress = true;
            ++s.fwd_ttl;
            if (terminal || (!answered && ++s.gaps >= cfg_.gap_limit)) {
              s.phase = Phase::kBackward;
              s.gaps = 0;
            }
            if (answered) s.gaps = 0;
          }
        }
        if (s.phase == Phase::kBackward) {
          if (s.bwd_ttl == 0) {
            s.phase = Phase::kDone;
            continue;
          }
          bool hit_stop_set = false;
          auto wrapped = [&](const wire::DecodedReply& rep) {
            ++stats.replies;
            // Stop when the responder is already known: the rest of the
            // backward path was seen by an earlier trace. A rate-limited
            // (silent) hop never triggers this — the pathology the paper
            // observed: Doubletree keeps draining the very buckets that
            // are already empty.
            hit_stop_set = !stop_set_.insert(rep.responder).second;
            if (sink) sink(rep);
          };
          ++stats.probes_sent;
          ++sent_in_round;
          send_probe(net, cfg_, target, s.bwd_ttl, wrapped);
          net.advance_us(cfg_.line_rate_gap_us);
          progress = true;
          --s.bwd_ttl;
          if (hit_stop_set) s.phase = Phase::kDone;
        }
      }
      const auto budget_us =
          static_cast<std::uint64_t>(static_cast<double>(sent_in_round) * 1e6 / pps);
      const auto spent_us = sent_in_round * cfg_.line_rate_gap_us;
      if (budget_us > spent_us) net.advance_us(budget_us - spent_us);
    }
  }
  stats.elapsed_virtual_us = net.now_us() - start;
  return stats;
}

}  // namespace beholder6::prober
