#include "prober/doubletree.hpp"

#include <algorithm>

#include "campaign/runner.hpp"

namespace beholder6::prober {

void DoubletreeSource::begin(std::uint64_t) {
  window_ = cfg_.effective_window();
  base_ = 0;
  start_window();
}

void DoubletreeSource::start_window() {
  if (base_ >= targets_.size()) {
    exhausted_ = true;
    return;
  }
  count_ = std::min(window_, targets_.size() - base_);
  state_.assign(count_, {});
  for (auto& s : state_) {
    s.fwd_ttl = cfg_.start_ttl;
    s.bwd_ttl = cfg_.start_ttl > 1 ? static_cast<std::uint8_t>(cfg_.start_ttl - 1) : 0;
  }
  idx_ = 0;
  step_ = Step::kForward;
  progress_ = false;
}

campaign::Poll DoubletreeSource::next(std::uint64_t) {
  while (!exhausted_) {
    if (idx_ == count_) {
      // Round complete. Keep going while some trace made progress; the
      // RoundEnd lets the pacer idle out the burst's rate budget either way.
      if (progress_) {
        idx_ = 0;
        step_ = Step::kForward;
        progress_ = false;
      } else {
        base_ += window_;
        start_window();
      }
      return campaign::Poll::round_end();
    }
    auto& s = state_[idx_];
    switch (step_) {
      case Step::kForward:
        step_ = Step::kBackward;
        if (s.phase == Phase::kForward) {
          if (s.fwd_ttl > cfg_.max_ttl) {
            s.phase = Phase::kBackward;
          } else {
            fwd_in_flight_ = true;
            terminal_ = false;
            progress_ = true;
            return campaign::Poll::emit({targets_[base_ + idx_], s.fwd_ttl, false});
          }
        }
        break;

      case Step::kBackward:
        // The same round iteration may probe backward right after the
        // forward step flipped the phase — Doubletree wastes no rounds.
        if (s.phase == Phase::kBackward && s.bwd_ttl > 0) {
          step_ = Step::kAdvance;
          fwd_in_flight_ = false;
          hit_stop_set_ = false;
          progress_ = true;
          return campaign::Poll::emit({targets_[base_ + idx_], s.bwd_ttl, false});
        }
        if (s.phase == Phase::kBackward) s.phase = Phase::kDone;  // bwd_ttl == 0
        step_ = Step::kForward;
        ++idx_;
        break;

      case Step::kAdvance:
        step_ = Step::kForward;
        ++idx_;
        break;
    }
  }
  return campaign::Poll::exhausted();
}

void DoubletreeSource::on_reply(const campaign::Probe&,
                                const wire::DecodedReply& reply, std::uint64_t) {
  if (fwd_in_flight_) {
    terminal_ = reply.type != wire::Icmp6Type::kTimeExceeded ||
                reply.responder == targets_[base_ + idx_];
    stop_set_.insert(reply.responder);
  } else {
    // Stop when the responder is already known: the rest of the backward
    // path was seen by an earlier trace. A rate-limited (silent) hop never
    // triggers this — the pathology the paper observed: Doubletree keeps
    // draining the very buckets that are already empty.
    hit_stop_set_ = !stop_set_.insert(reply.responder).second;
  }
}

void DoubletreeSource::on_probe_done(const campaign::Probe&, bool answered,
                                     std::uint64_t) {
  auto& s = state_[idx_];
  if (fwd_in_flight_) {
    ++s.fwd_ttl;
    if (terminal_ || (!answered && ++s.gaps >= cfg_.gap_limit)) {
      s.phase = Phase::kBackward;
      s.gaps = 0;
    }
    if (answered) s.gaps = 0;
  } else {
    --s.bwd_ttl;
    if (hit_stop_set_) s.phase = Phase::kDone;
  }
}

void DoubletreeSource::finish(campaign::ProbeStats& stats) const {
  stats.traces = targets_.size();
}

ProbeStats DoubletreeProber::run(simnet::Network& net,
                                 const std::vector<Ipv6Addr>& targets,
                                 const ResponseSink& sink) {
  DoubletreeSource source{cfg_, targets, stop_set_};
  return campaign::CampaignRunner::run_one(net, source, cfg_.endpoint(),
                                           cfg_.pacing(), sink);
}

}  // namespace beholder6::prober
