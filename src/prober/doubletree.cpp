#include "prober/doubletree.hpp"

#include <algorithm>

#include "campaign/runner.hpp"
#include "netbase/dcheck.hpp"

namespace beholder6::prober {

// ---- SnapshotStopSet --------------------------------------------------------

SnapshotStopSet::SnapshotStopSet(const StopSet& initial, std::size_t children,
                                 StopSet* publish)
    : deltas_(children), publish_(publish) {
  frozen_.reserve(initial.size());
  // beholder6: lint-allow(unordered-iter): set-to-set copy, membership only
  for (const auto& addr : initial) frozen_.insert(addr);
}

bool SnapshotStopSet::insert(std::size_t child, const Ipv6Addr& addr) {
  // The frozen set is immutable this epoch, so a hit there needs no delta
  // entry; a miss records the discovery privately. Either way the return
  // value is "was this already visible to *this child*" — the same answer
  // the serial set's insert().second gives.
  B6_DCHECK(child < deltas_.size(),
            "SnapshotStopSet write from a child outside the family — delta "
            "isolation (and with it the epoch merge order) is broken");
  if (frozen_.contains(addr)) return true;
  return !deltas_[child].inserts.insert(addr).second;
}

bool SnapshotStopSet::contains(std::size_t child, const Ipv6Addr& addr) const {
  B6_DCHECK(child < deltas_.size(),
            "SnapshotStopSet read from a child outside the family");
  return frozen_.contains(addr) || deltas_[child].inserts.contains(addr);
}

void SnapshotStopSet::mark_exhausted(std::size_t child) {
  deltas_[child].exhausted = true;
}

void SnapshotStopSet::merge_epoch() {
  // Canonical order: child 0's delta first. Set membership is insertion
  // order independent, but the canon makes the merge — like every other
  // parallel-backend fold — a pure function of the children's results.
  for (auto& delta : deltas_) {
    // beholder6: lint-allow(unordered-iter): folding into a set — only
    // membership is ever observable, never the insertion sequence
    for (const auto& addr : delta.inserts) frozen_.insert(addr);
    delta.inserts.clear();  // keeps capacity: next epoch inserts allocate-free
  }
  ++epoch_no_;
  if (publish_ != nullptr && !published_ &&
      std::all_of(deltas_.begin(), deltas_.end(),
                  [](const Delta& d) { return d.exhausted; })) {
    // beholder6: lint-allow(unordered-iter): set-to-set copy; the legacy
    // StopSet exposes membership only
    for (const auto& addr : frozen_) publish_->insert(addr);
    published_ = true;
  }
}

// ---- DoubletreeSource -------------------------------------------------------

void DoubletreeSource::begin(std::uint64_t) {
  window_ = cfg_.effective_window();
  epoch_len_ = cfg_.epoch_traces ? cfg_.epoch_traces : window_;
  base_ = 0;
  start_window();
}

void DoubletreeSource::start_window() {
  if (base_ >= targets_.size()) {
    exhausted_ = true;
    return;
  }
  count_ = std::min(window_, targets_.size() - base_);
  state_.assign(count_, {});
  for (auto& s : state_) {
    s.fwd_ttl = cfg_.start_ttl;
    s.bwd_ttl = cfg_.start_ttl > 1 ? static_cast<std::uint8_t>(cfg_.start_ttl - 1) : 0;
  }
  idx_ = 0;
  step_ = Step::kForward;
  progress_ = false;
}

bool DoubletreeSource::stop_insert(const Ipv6Addr& addr) {
  return snap_ ? snap_->insert(child_, addr) : !legacy_->insert(addr).second;
}

campaign::Poll DoubletreeSource::next(std::uint64_t) {
  while (!exhausted_) {
    if (idx_ == count_) {
      // Round complete. Keep going while some trace made progress; the
      // RoundEnd lets the pacer idle out the burst's rate budget either way.
      if (progress_) {
        idx_ = 0;
        step_ = Step::kForward;
        progress_ = false;
      } else {
        // Window batch done: `count_` traces finished together. In family
        // mode this is the only place an epoch can close — the boundary
        // where at least epoch_len_ traces completed since it opened — so
        // epochs always align to whole window batches.
        const std::size_t completed = count_;
        base_ += window_;
        start_window();
        if (snap_ && !exhausted_) {
          epoch_done_ += completed;
          if (epoch_done_ >= epoch_len_) {
            epoch_done_ = 0;
            epoch_paused_ = true;  // backend barriers before the next poll
          }
        }
      }
      return campaign::Poll::round_end();
    }
    auto& s = state_[idx_];
    switch (step_) {
      case Step::kForward:
        step_ = Step::kBackward;
        if (s.phase == Phase::kForward) {
          if (s.fwd_ttl > cfg_.max_ttl) {
            s.phase = Phase::kBackward;
          } else {
            fwd_in_flight_ = true;
            terminal_ = false;
            progress_ = true;
            return campaign::Poll::emit({targets_[base_ + idx_], s.fwd_ttl, false});
          }
        }
        break;

      case Step::kBackward:
        // The same round iteration may probe backward right after the
        // forward step flipped the phase — Doubletree wastes no rounds.
        if (s.phase == Phase::kBackward && s.bwd_ttl > 0) {
          step_ = Step::kAdvance;
          fwd_in_flight_ = false;
          hit_stop_set_ = false;
          progress_ = true;
          return campaign::Poll::emit({targets_[base_ + idx_], s.bwd_ttl, false});
        }
        if (s.phase == Phase::kBackward) s.phase = Phase::kDone;  // bwd_ttl == 0
        step_ = Step::kForward;
        ++idx_;
        break;

      case Step::kAdvance:
        step_ = Step::kForward;
        ++idx_;
        break;
    }
  }
  if (snap_ && !reported_exhausted_) {
    reported_exhausted_ = true;
    snap_->mark_exhausted(child_);
  }
  return campaign::Poll::exhausted();
}

void DoubletreeSource::on_reply(const campaign::Probe&,
                                const wire::DecodedReply& reply, std::uint64_t) {
  if (fwd_in_flight_) {
    terminal_ = reply.type != wire::Icmp6Type::kTimeExceeded ||
                reply.responder == targets_[base_ + idx_];
    stop_insert(reply.responder);
  } else {
    // Stop when the responder is already known: the rest of the backward
    // path was seen by an earlier trace. A rate-limited (silent) hop never
    // triggers this — the pathology the paper observed: Doubletree keeps
    // draining the very buckets that are already empty. In family mode
    // "known" means the frozen epoch set plus this child's own delta, so
    // the same holds per epoch.
    hit_stop_set_ = stop_insert(reply.responder);
  }
}

void DoubletreeSource::on_probe_done(const campaign::Probe&, bool answered,
                                     std::uint64_t) {
  auto& s = state_[idx_];
  if (fwd_in_flight_) {
    ++s.fwd_ttl;
    if (terminal_ || (!answered && ++s.gaps >= cfg_.gap_limit)) {
      s.phase = Phase::kBackward;
      s.gaps = 0;
    }
    if (answered) s.gaps = 0;
  } else {
    --s.bwd_ttl;
    if (hit_stop_set_) s.phase = Phase::kDone;
  }
}

void DoubletreeSource::finish(campaign::ProbeStats& stats) const {
  // Each family child owns a disjoint slice, so child contributions sum to
  // the parent's count — the split() contract.
  stats.traces = targets_.size();
}

std::vector<std::unique_ptr<campaign::ProbeSource>> DoubletreeSource::split(
    std::uint64_t k) const {
  std::vector<std::unique_ptr<campaign::ProbeSource>> children;
  // Children are one-shot work units, not campaign specs: they never
  // re-split. An empty list has no work to partition.
  if (k < 1 || targets_.empty() || snap_) return children;
  const std::uint64_t n = targets_.size();
  const std::uint64_t pieces = std::min<std::uint64_t>(k, n);
  auto snap = std::make_shared<SnapshotStopSet>(
      *legacy_, static_cast<std::size_t>(pieces), legacy_);
  children.reserve(pieces);
  for (std::uint64_t i = 0; i < pieces; ++i) {
    const auto lo = static_cast<std::size_t>(i * n / pieces);
    const auto hi = static_cast<std::size_t>((i + 1) * n / pieces);
    children.emplace_back(new DoubletreeSource(
        cfg_, targets_.subspan(lo, hi - lo), snap, static_cast<std::size_t>(i)));
  }
  return children;
}

ProbeStats DoubletreeProber::run(simnet::Network& net,
                                 const std::vector<Ipv6Addr>& targets,
                                 const ResponseSink& sink) {
  DoubletreeSource source{cfg_, targets, stop_set_};
  return campaign::CampaignRunner::run_one(net, source, cfg_.endpoint(),
                                           cfg_.pacing(), sink);
}

}  // namespace beholder6::prober
