#include "prober/multivantage.hpp"

#include <memory>

namespace beholder6::prober {

MultiVantageResult run_multi_vantage(simnet::Network& net,
                                     const std::vector<simnet::VantageInfo>& vantages,
                                     const std::vector<Ipv6Addr>& targets,
                                     Yarrp6Config base_cfg,
                                     const MultiVantageOptions& options) {
  MultiVantageResult result;
  base_cfg.shard_count = vantages.size();

  std::vector<std::unique_ptr<Yarrp6Source>> sources;
  sources.reserve(vantages.size());
  auto make_source = [&](std::size_t i) {
    Yarrp6Config cfg = base_cfg;
    cfg.src = vantages[i].src;
    cfg.shard = i;
    sources.push_back(std::make_unique<Yarrp6Source>(cfg, targets));
    return cfg;
  };
  const campaign::ResponseSink merge = [&](const wire::DecodedReply& r) {
    result.collector.on_reply(r);
  };

  if (options.n_threads > 0) {
    // Parallel backend: one shard per vantage, each over a private replica
    // of the caller's network. Shard collectors are worker-thread-private
    // and merge deterministically in vantage order afterwards.
    std::vector<topology::TraceCollector> collectors(vantages.size());
    std::vector<campaign::Shard> shards;
    shards.reserve(vantages.size());
    for (std::size_t i = 0; i < vantages.size(); ++i) {
      const auto cfg = make_source(i);
      shards.push_back({sources.back().get(), cfg.endpoint(), cfg.pacing(),
                        [&collectors, i](const wire::DecodedReply& r) {
                          collectors[i].on_reply(r);
                        }});
    }
    campaign::ParallelCampaignRunner parallel{net, options.n_threads};
    // Replies flow through the per-shard collectors; skip the merged stream.
    // (With split_factor > 1 each vantage's collector is fed post-hoc in
    // canonical subshard order — still deterministic at any thread count.
    // This holds for every source kind the backend schedules, including
    // epoch-coupled families such as split Doubletree, whose barrier
    // merges are canonical-order too; vantages here are yarrp6 walks, the
    // free-running case.)
    auto merged = parallel.run(shards, {.collect_replies = false,
                                        .split_factor = options.split_factor});
    result.per_vantage = std::move(merged.per_shard);
    for (const auto& c : collectors) result.collector.merge(c);
    return result;
  }

  if (options.interleave) {
    // One event queue: the vantages probe concurrently in virtual time.
    campaign::CampaignRunner runner{net};
    for (std::size_t i = 0; i < vantages.size(); ++i) {
      const auto cfg = make_source(i);
      runner.add(*sources.back(), cfg.endpoint(), cfg.pacing(), merge);
    }
    result.per_vantage = runner.run();
  } else {
    // Sequential schedule: each vantage's campaign completes before the
    // next begins, on the same network (buckets keep their state).
    for (std::size_t i = 0; i < vantages.size(); ++i) {
      const auto cfg = make_source(i);
      result.per_vantage.push_back(campaign::CampaignRunner::run_one(
          net, *sources.back(), cfg.endpoint(), cfg.pacing(), merge));
    }
  }
  return result;
}

}  // namespace beholder6::prober
