#include "prober/multivantage.hpp"

namespace beholder6::prober {

MultiVantageResult run_multi_vantage(simnet::Network& net,
                                     const std::vector<simnet::VantageInfo>& vantages,
                                     const std::vector<Ipv6Addr>& targets,
                                     Yarrp6Config base_cfg) {
  MultiVantageResult result;
  base_cfg.shard_count = vantages.size();
  for (std::size_t i = 0; i < vantages.size(); ++i) {
    Yarrp6Config cfg = base_cfg;
    cfg.src = vantages[i].src;
    cfg.shard = i;
    Yarrp6Prober prober{cfg};
    result.per_vantage.push_back(prober.run(
        net, targets,
        [&](const wire::DecodedReply& r) { result.collector.on_reply(r); }));
  }
  return result;
}

}  // namespace beholder6::prober
