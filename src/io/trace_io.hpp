// io/trace_io.hpp — campaign output serialization.
//
// The paper releases its prober output and discovered-topology datasets.
// We provide two interchangeable formats:
//
//   text   — one reply per line, yarrp-flavoured, diff-friendly:
//            <target> <ttl> <responder> <type> <code> <rtt_us> <instance>
//   binary — "B6TR" framed fixed-width records, for large campaigns.
//
// Readers reproduce the wire::DecodedReply stream, so a persisted campaign
// can be replayed into a topology::TraceCollector or analysis pass exactly
// as if it were live.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "wire/probe.hpp"

namespace beholder6::io {

/// Minimal persisted form of one reply.
struct TraceRecord {
  Ipv6Addr target;
  Ipv6Addr responder;
  std::uint8_t ttl = 0;
  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::uint8_t instance = 0;
  std::uint32_t rtt_us = 0;

  [[nodiscard]] static TraceRecord from_reply(const wire::DecodedReply& r) {
    TraceRecord rec;
    rec.target = r.probe.target;
    rec.responder = r.responder;
    rec.ttl = r.probe.ttl;
    rec.type = static_cast<std::uint8_t>(r.type);
    rec.code = r.code;
    rec.instance = r.probe.instance;
    rec.rtt_us = r.rtt_us;
    return rec;
  }

  [[nodiscard]] wire::DecodedReply to_reply() const {
    wire::DecodedReply r;
    r.probe.target = target;
    r.responder = responder;
    r.probe.ttl = ttl;
    r.type = static_cast<wire::Icmp6Type>(type);
    r.code = code;
    r.probe.instance = instance;
    r.rtt_us = rtt_us;
    return r;
  }

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

// ---- Text format ----

/// Serialize one record as a single line (no trailing newline).
[[nodiscard]] std::string to_text_line(const TraceRecord& rec);

/// Parse one line; nullopt on malformed input.
[[nodiscard]] std::optional<TraceRecord> from_text_line(const std::string& line);

/// Stream writer; one line per record, '#' comment header.
class TextWriter {
 public:
  explicit TextWriter(std::ostream& out);
  void write(const TraceRecord& rec);
  [[nodiscard]] std::size_t written() const { return count_; }

 private:
  std::ostream& out_;
  std::size_t count_ = 0;
};

/// Read every record from a text stream, skipping comments and blanks.
/// Malformed lines are counted, not fatal.
struct TextReadResult {
  std::vector<TraceRecord> records;
  std::size_t malformed = 0;
};
[[nodiscard]] TextReadResult read_text(std::istream& in);

// ---- Binary format ----

inline constexpr std::uint32_t kBinaryMagic = 0x42365452;  // "B6TR"
inline constexpr std::uint16_t kBinaryVersion = 1;

/// Stream framing sentinel: a binary header whose count field holds this
/// value declares an *open-ended* stream — records follow until EOF. A
/// long-running campaign cannot know its final record count up front, and
/// a pipe cannot seek back to patch the header, so incremental writers use
/// this framing; read_binary accepts both.
inline constexpr std::uint32_t kBinaryStreamCount = 0xffffffffu;

/// Write a whole campaign: header + fixed-width records.
void write_binary(std::ostream& out, const std::vector<TraceRecord>& records);

/// Read a whole campaign; nullopt on bad magic/version/truncation. Accepts
/// both the counted framing and the kBinaryStreamCount open-ended framing.
[[nodiscard]] std::optional<std::vector<TraceRecord>> read_binary(std::istream& in);

/// Incremental binary writer: header up front (open-ended framing), one
/// fixed-width record per write(), nothing buffered beyond the ostream's
/// own buffer — an interrupted campaign keeps every record already
/// written, which is the contract that lets the campaign reactor stream
/// results per tenant instead of delivering them at exhaustion.
class BinaryStreamWriter {
 public:
  explicit BinaryStreamWriter(std::ostream& out);
  void write(const TraceRecord& rec);
  [[nodiscard]] std::size_t written() const { return count_; }

 private:
  std::ostream& out_;
  std::size_t count_ = 0;
};

/// ResponseSink-shaped adapter over either incremental writer: converts
/// each wire::DecodedReply to a TraceRecord and appends it to the stream
/// immediately, in delivery order. Callable where a
/// campaign::ResponseSink is expected (this header cannot name that type —
/// io sits below campaign in the layering — but the call signature is the
/// contract). The usual sink rules apply: it observes and records, and
/// must not inject into the campaign's own network.
class StreamingTraceSink {
 public:
  enum class Format : std::uint8_t { kText, kBinary };

  StreamingTraceSink(std::ostream& out, Format format);
  void operator()(const wire::DecodedReply& reply);
  [[nodiscard]] std::size_t written() const;

 private:
  std::optional<TextWriter> text_;
  std::optional<BinaryStreamWriter> binary_;
};

}  // namespace beholder6::io
