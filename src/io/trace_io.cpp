#include "io/trace_io.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <sstream>

namespace beholder6::io {

std::string to_text_line(const TraceRecord& rec) {
  std::string out;
  out.reserve(96);
  out += rec.target.to_string();
  out += ' ';
  out += std::to_string(rec.ttl);
  out += ' ';
  out += rec.responder.to_string();
  out += ' ';
  out += std::to_string(rec.type);
  out += ' ';
  out += std::to_string(rec.code);
  out += ' ';
  out += std::to_string(rec.rtt_us);
  out += ' ';
  out += std::to_string(rec.instance);
  return out;
}

std::optional<TraceRecord> from_text_line(const std::string& line) {
  std::istringstream in{line};
  std::string target, responder;
  unsigned ttl = 0, type = 0, code = 0, instance = 0;
  std::uint64_t rtt = 0;
  if (!(in >> target >> ttl >> responder >> type >> code >> rtt >> instance))
    return std::nullopt;
  const auto t = Ipv6Addr::parse(target);
  const auto r = Ipv6Addr::parse(responder);
  if (!t || !r || ttl > 255 || type > 255 || code > 255 || instance > 255 ||
      rtt > 0xffffffffULL)
    return std::nullopt;
  TraceRecord rec;
  rec.target = *t;
  rec.responder = *r;
  rec.ttl = static_cast<std::uint8_t>(ttl);
  rec.type = static_cast<std::uint8_t>(type);
  rec.code = static_cast<std::uint8_t>(code);
  rec.instance = static_cast<std::uint8_t>(instance);
  rec.rtt_us = static_cast<std::uint32_t>(rtt);
  return rec;
}

TextWriter::TextWriter(std::ostream& out) : out_(out) {
  out_ << "# beholder6 trace: target ttl responder type code rtt_us instance\n";
}

void TextWriter::write(const TraceRecord& rec) {
  out_ << to_text_line(rec) << '\n';
  ++count_;
}

TextReadResult read_text(std::istream& in) {
  TextReadResult result;
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    if (auto rec = from_text_line(line))
      result.records.push_back(*rec);
    else
      ++result.malformed;
  }
  return result;
}

namespace {

constexpr std::size_t kRecordSize = 16 + 16 + 4 + 4;  // addrs + fields + rtt

void put_u32(std::ostream& out, std::uint32_t v) {
  const std::array<char, 4> b{static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                              static_cast<char>(v >> 8), static_cast<char>(v)};
  out.write(b.data(), 4);
}

std::optional<std::uint32_t> get_u32(std::istream& in) {
  std::array<char, 4> b{};
  if (!in.read(b.data(), 4)) return std::nullopt;
  return (static_cast<std::uint32_t>(static_cast<std::uint8_t>(b[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(b[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(b[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(b[3]));
}

void put_record(std::ostream& out, const TraceRecord& rec) {
  out.write(reinterpret_cast<const char*>(rec.target.bytes().data()), 16);
  out.write(reinterpret_cast<const char*>(rec.responder.bytes().data()), 16);
  const std::array<char, 4> fields{static_cast<char>(rec.ttl),
                                   static_cast<char>(rec.type),
                                   static_cast<char>(rec.code),
                                   static_cast<char>(rec.instance)};
  out.write(fields.data(), 4);
  put_u32(out, rec.rtt_us);
}

std::optional<TraceRecord> get_record(std::istream& in) {
  std::array<char, kRecordSize - 4> buf{};
  if (!in.read(buf.data(), buf.size())) return std::nullopt;
  TraceRecord rec;
  std::array<std::uint8_t, 16> a{};
  std::copy_n(buf.begin(), 16, reinterpret_cast<char*>(a.data()));
  rec.target = Ipv6Addr{a};
  std::copy_n(buf.begin() + 16, 16, reinterpret_cast<char*>(a.data()));
  rec.responder = Ipv6Addr{a};
  rec.ttl = static_cast<std::uint8_t>(buf[32]);
  rec.type = static_cast<std::uint8_t>(buf[33]);
  rec.code = static_cast<std::uint8_t>(buf[34]);
  rec.instance = static_cast<std::uint8_t>(buf[35]);
  const auto rtt = get_u32(in);
  if (!rtt) return std::nullopt;
  rec.rtt_us = *rtt;
  return rec;
}

}  // namespace

void write_binary(std::ostream& out, const std::vector<TraceRecord>& records) {
  put_u32(out, kBinaryMagic);
  put_u32(out, kBinaryVersion);
  put_u32(out, static_cast<std::uint32_t>(records.size()));
  for (const auto& rec : records) put_record(out, rec);
}

std::optional<std::vector<TraceRecord>> read_binary(std::istream& in) {
  const auto magic = get_u32(in);
  const auto version = get_u32(in);
  const auto count = get_u32(in);
  if (!magic || *magic != kBinaryMagic) return std::nullopt;
  if (!version || *version != kBinaryVersion) return std::nullopt;
  if (!count) return std::nullopt;

  std::vector<TraceRecord> records;
  if (*count == kBinaryStreamCount) {
    // Open-ended stream framing: records until EOF. A clean EOF at a
    // record boundary ends the stream; a partial record is truncation.
    while (in.peek() != std::istream::traits_type::eof()) {
      const auto rec = get_record(in);
      if (!rec) return std::nullopt;
      records.push_back(*rec);
    }
    return records;
  }
  records.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto rec = get_record(in);
    if (!rec) return std::nullopt;
    records.push_back(*rec);
  }
  return records;
}

BinaryStreamWriter::BinaryStreamWriter(std::ostream& out) : out_(out) {
  put_u32(out_, kBinaryMagic);
  put_u32(out_, kBinaryVersion);
  put_u32(out_, kBinaryStreamCount);
}

void BinaryStreamWriter::write(const TraceRecord& rec) {
  put_record(out_, rec);
  ++count_;
}

StreamingTraceSink::StreamingTraceSink(std::ostream& out, Format format) {
  if (format == Format::kText)
    text_.emplace(out);
  else
    binary_.emplace(out);
}

void StreamingTraceSink::operator()(const wire::DecodedReply& reply) {
  const auto rec = TraceRecord::from_reply(reply);
  if (text_)
    text_->write(rec);
  else
    binary_->write(rec);
}

std::size_t StreamingTraceSink::written() const {
  return text_ ? text_->written() : binary_->written();
}

}  // namespace beholder6::io
