#include "netbase/ipv6.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace beholder6 {

namespace {

/// Parse up to 4 hex digits of one group; returns nullopt on bad input.
std::optional<std::uint16_t> parse_group(std::string_view g) {
  if (g.empty() || g.size() > 4) return std::nullopt;
  std::uint16_t v = 0;
  for (char c : g) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return std::nullopt;
    v = static_cast<std::uint16_t>((v << 4) | d);
  }
  return v;
}

}  // namespace

std::optional<Ipv6Addr> Ipv6Addr::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;

  // Split on "::" (at most one occurrence).
  const auto dc = text.find("::");
  std::string_view left = text, right{};
  bool has_dc = dc != std::string_view::npos;
  if (has_dc) {
    left = text.substr(0, dc);
    right = text.substr(dc + 2);
    if (right.find("::") != std::string_view::npos) return std::nullopt;
  }

  auto split_groups = [](std::string_view s) -> std::optional<std::vector<std::uint16_t>> {
    std::vector<std::uint16_t> out;
    if (s.empty()) return out;
    std::size_t start = 0;
    while (true) {
      const auto colon = s.find(':', start);
      const auto piece = s.substr(start, colon == std::string_view::npos
                                             ? std::string_view::npos
                                             : colon - start);
      const auto g = parse_group(piece);
      if (!g) return std::nullopt;
      out.push_back(*g);
      if (colon == std::string_view::npos) break;
      start = colon + 1;
      if (start >= s.size() && colon != std::string_view::npos) return std::nullopt;
    }
    return out;
  };

  const auto lg = split_groups(left);
  const auto rg = split_groups(right);
  if (!lg || !rg) return std::nullopt;

  std::vector<std::uint16_t> groups;
  if (has_dc) {
    const std::size_t fill = 8 - lg->size() - rg->size();
    if (lg->size() + rg->size() > 7) return std::nullopt;  // "::" must cover >=1 group
    groups = *lg;
    groups.insert(groups.end(), fill, 0);
    groups.insert(groups.end(), rg->begin(), rg->end());
  } else {
    if (lg->size() != 8) return std::nullopt;
    groups = *lg;
  }

  std::array<std::uint8_t, 16> b{};
  for (std::size_t i = 0; i < 8; ++i) {
    b[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    b[2 * i + 1] = static_cast<std::uint8_t>(groups[i] & 0xff);
  }
  return Ipv6Addr{b};
}

Ipv6Addr Ipv6Addr::must_parse(std::string_view text) {
  auto a = parse(text);
  if (!a) throw std::invalid_argument("bad IPv6 address: " + std::string(text));
  return *a;
}

std::string Ipv6Addr::to_string() const {
  std::array<std::uint16_t, 8> g{};
  for (std::size_t i = 0; i < 8; ++i)
    g[i] = static_cast<std::uint16_t>((bytes_[2 * i] << 8) | bytes_[2 * i + 1]);

  // Find the longest run of zero groups (leftmost on tie, length >= 2).
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (g[static_cast<std::size_t>(i)] != 0) { ++i; continue; }
    int j = i;
    while (j < 8 && g[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) { best_start = i; best_len = j - i; }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  out.reserve(40);
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof buf, "%x", g[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
  }
  return out;
}

Ipv6Addr Ipv6Addr::masked(unsigned len) const {
  if (len >= 128) return *this;
  auto b = bytes_;
  const unsigned full = len / 8, rem = len % 8;
  if (rem != 0) b[full] &= static_cast<std::uint8_t>(0xff00 >> rem);
  for (unsigned i = full + (rem ? 1 : 0); i < 16; ++i) b[i] = 0;
  return Ipv6Addr{b};
}

Ipv6Addr Ipv6Addr::operator|(const Ipv6Addr& o) const {
  auto b = bytes_;
  for (std::size_t i = 0; i < 16; ++i) b[i] |= o.bytes_[i];
  return Ipv6Addr{b};
}

unsigned Ipv6Addr::common_prefix_len(const Ipv6Addr& o) const {
  unsigned n = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint8_t x = static_cast<std::uint8_t>(bytes_[i] ^ o.bytes_[i]);
    if (x == 0) { n += 8; continue; }
    for (int b = 7; b >= 0; --b) {
      if ((x >> b) & 1U) return n;
      ++n;
    }
  }
  return n;
}

}  // namespace beholder6
