// netbase/radix_trie.hpp — binary trie over IPv6 prefixes with
// longest-prefix match. Used for the simulated BGP table, routed-space
// checks during target characterization, and ground-truth subnet lookup.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "netbase/ipv6.hpp"
#include "netbase/prefix.hpp"

namespace beholder6 {

/// A binary (one bit per level) trie mapping IPv6 prefixes to values of type
/// V. Supports exact insert/lookup, longest-prefix match, covering test and
/// in-order enumeration. Not thread-safe for concurrent mutation.
template <typename V>
class RadixTrie {
 public:
  RadixTrie() : root_(std::make_unique<Node>()) {}

  /// Insert (or overwrite) the value at `p`. Returns true if a new entry was
  /// created, false if an existing entry was overwritten.
  bool insert(const Prefix& p, V value) {
    Node* n = descend_create(p);
    const bool fresh = !n->value.has_value();
    n->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Exact-match lookup.
  [[nodiscard]] const V* find(const Prefix& p) const {
    const Node* n = root_.get();
    for (unsigned i = 0; i < p.len() && n; ++i)
      n = n->child[p.base().bit(i) ? 1 : 0].get();
    return (n && n->value) ? &*n->value : nullptr;
  }

  /// Longest-prefix match for an address: the most specific inserted prefix
  /// containing `a`, or nullopt if none.
  [[nodiscard]] std::optional<std::pair<Prefix, const V*>> lpm(const Ipv6Addr& a) const {
    const Node* n = root_.get();
    const Node* best = n->value ? n : nullptr;
    unsigned best_len = 0;
    for (unsigned i = 0; i < 128 && n; ++i) {
      n = n->child[a.bit(i) ? 1 : 0].get();
      if (n && n->value) { best = n; best_len = i + 1; }
    }
    if (!best) return std::nullopt;
    return std::make_pair(Prefix{a.masked(best_len), best_len}, &*best->value);
  }

  /// True iff some inserted prefix contains `a`.
  [[nodiscard]] bool covers(const Ipv6Addr& a) const { return lpm(a).has_value(); }

  /// Visit every (prefix, value) pair in address order.
  template <typename F>
  void for_each(F f) const {
    walk(root_.get(), Ipv6Addr{}, 0, f);
  }

  /// All entries whose prefix is covered by `p` (including `p` itself).
  [[nodiscard]] std::vector<std::pair<Prefix, V>> subtree(const Prefix& p) const {
    std::vector<std::pair<Prefix, V>> out;
    const Node* n = root_.get();
    for (unsigned i = 0; i < p.len() && n; ++i)
      n = n->child[p.base().bit(i) ? 1 : 0].get();
    if (n) {
      auto collect = [&](const Prefix& q, const V& v) { out.emplace_back(q, v); };
      walk(n, p.base(), p.len(), collect);
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::optional<V> value;
    std::unique_ptr<Node> child[2];
  };

  Node* descend_create(const Prefix& p) {
    Node* n = root_.get();
    for (unsigned i = 0; i < p.len(); ++i) {
      auto& c = n->child[p.base().bit(i) ? 1 : 0];
      if (!c) c = std::make_unique<Node>();
      n = c.get();
    }
    return n;
  }

  template <typename F>
  static void walk(const Node* n, Ipv6Addr acc, unsigned depth, F& f) {
    if (n->value) f(Prefix{acc, depth}, *n->value);
    if (n->child[0]) walk(n->child[0].get(), acc, depth + 1, f);
    if (n->child[1]) walk(n->child[1].get(), acc.with_bit(depth, true), depth + 1, f);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace beholder6
