// netbase/annotated_mutex.hpp — mutex wrappers carrying Clang thread-safety
// capabilities, so the cross-thread invariants documented in
// docs/ARCHITECTURE.md ("Threading model") are compiler-checked facts
// instead of prose.
//
// Under Clang, `-Wthread-safety -Werror` (the CI `thread-safety` job)
// rejects any access to a B6_GUARDED_BY member without its mutex held, any
// REQUIRES-annotated call on the wrong side of a lock, and any
// acquire/release imbalance. Under GCC (the local toolchain) every macro
// expands to nothing and the wrappers are exactly std::mutex /
// std::shared_mutex / std::condition_variable — zero runtime difference.
//
// Usage pattern (see campaign/parallel.cpp for the full worked example):
//
//   class Queue {
//     netbase::Mutex mu_;
//     std::deque<Item> items_ B6_GUARDED_BY(mu_);
//    public:
//     void push(Item it) {
//       netbase::MutexLock lock(mu_);
//       items_.push_back(std::move(it));   // OK: lock held
//     }
//     void push_unlocked(Item) B6_REQUIRES(mu_);  // caller must hold mu_
//   };
//
// Known analysis limits, and the conventions that keep us inside them:
//   * lambda bodies are analyzed as separate functions with no capability
//     context — so no guarded access inside condition_variable wait
//     predicates. Use explicit `while (!cond()) cv.wait(lock);` loops in
//     B6_REQUIRES-annotated methods instead;
//   * the attributes only attach to data members and globals, not locals —
//     shared state must live in a class (which is better structure anyway).
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Clang exposes the analysis via __attribute__((...)); the macro layer
// makes every annotation vanish on GCC and MSVC.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define B6_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef B6_THREAD_ANNOTATION
#define B6_THREAD_ANNOTATION(x)
#endif

#define B6_CAPABILITY(x) B6_THREAD_ANNOTATION(capability(x))
#define B6_SCOPED_CAPABILITY B6_THREAD_ANNOTATION(scoped_lockable)
#define B6_GUARDED_BY(x) B6_THREAD_ANNOTATION(guarded_by(x))
#define B6_PT_GUARDED_BY(x) B6_THREAD_ANNOTATION(pt_guarded_by(x))
#define B6_REQUIRES(...) \
  B6_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define B6_REQUIRES_SHARED(...) \
  B6_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define B6_ACQUIRE(...) B6_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define B6_ACQUIRE_SHARED(...) \
  B6_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define B6_RELEASE(...) B6_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define B6_RELEASE_SHARED(...) \
  B6_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define B6_EXCLUDES(...) B6_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define B6_RETURN_CAPABILITY(x) B6_THREAD_ANNOTATION(lock_returned(x))
#define B6_NO_THREAD_SAFETY_ANALYSIS \
  B6_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace beholder6::netbase {

/// std::mutex carrying the `capability` attribute.
class B6_CAPABILITY("mutex") Mutex {
 public:
  void lock() B6_ACQUIRE() { mu_.lock(); }
  void unlock() B6_RELEASE() { mu_.unlock(); }
  bool try_lock() B6_THREAD_ANNOTATION(try_acquire_capability(true)) {
    return mu_.try_lock();
  }

  /// The wrapped mutex, for APIs that need the native handle. Calls made
  /// through it are invisible to the analysis — prefer the wrappers.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::shared_mutex carrying the `capability` attribute: exclusive for
/// writers, shared for readers.
class B6_CAPABILITY("shared_mutex") SharedMutex {
 public:
  void lock() B6_ACQUIRE() { mu_.lock(); }
  void unlock() B6_RELEASE() { mu_.unlock(); }
  void lock_shared() B6_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() B6_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over Mutex, relockable (lock()/unlock() pairs mid
/// scope) — the shape the condition-variable wait protocol needs.
class B6_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) B6_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() B6_RELEASE() = default;

  /// Drop the lock mid-scope (e.g. to run a work unit outside it).
  void unlock() B6_RELEASE() { lock_.unlock(); }
  /// Re-take it before touching guarded state again.
  void lock() B6_ACQUIRE() { lock_.lock(); }

  /// The wrapped lock, for std::condition_variable::wait. The analysis
  /// treats the wait as a no-op on the capability, which matches the
  /// protocol: wait() releases and re-acquires internally, and on return
  /// the lock is held again.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Scoped shared (reader) lock over SharedMutex.
class B6_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) B6_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLock() B6_RELEASE() { mu_.unlock_shared(); }

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (writer) lock over SharedMutex.
class B6_SCOPED_CAPABILITY SharedMutexWriterLock {
 public:
  explicit SharedMutexWriterLock(SharedMutex& mu) B6_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~SharedMutexWriterLock() B6_RELEASE() { mu_.unlock(); }

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with Mutex/MutexLock. wait() must be called
/// with the lock held; the B6_REQUIRES annotation on the caller's method
/// is what proves it.
class CondVar {
 public:
  void wait(MutexLock& lock) { cv_.wait(lock.native()); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace beholder6::netbase
