// netbase/spsc_ring.hpp — a bounded lock-free single-producer /
// single-consumer ring, the reply conduit of the parallel campaign
// backend's streaming merge.
//
// This is the classic Lamport queue with the two standard latency fixes:
//
//   * head and tail live on their own cache lines (alignas below), so the
//     producer's stores never invalidate the consumer's line and vice
//     versa — the only shared traffic is the unavoidable index exchange;
//   * each side keeps a *cached* copy of the other side's index and
//     refreshes it only when the ring looks full (producer) or empty
//     (consumer). In steady state a push or pop is one relaxed load, one
//     slot copy and one release store — no contended atomics at all.
//
// Memory ordering: the producer publishes a slot with a release store of
// tail_; the consumer acquires it before reading the slot, and returns the
// slot to the producer with a release store of head_ which the producer
// acquires before overwriting. That pairing is the entire synchronization
// story — ThreadSanitizer sees the release/acquire edges and stays quiet.
//
// The ring never allocates after construction and never blocks: try_push
// on a full ring and try_pop on an empty one simply return false, and the
// caller decides the backpressure policy (the campaign merger drains
// continuously, so a blocked producer only ever spins briefly).
//
// Capacity is rounded up to a power of two so the index math is a mask,
// and the indices are free-running 64-bit counters (no wrap handling: at
// one push per nanosecond they wrap after ~584 years).
//
// Strictly single-producer / single-consumer: exactly one thread may call
// try_push / high_water, and exactly one (other) thread try_pop. Nothing
// detects a violation — it is a contract, enforced by the owning code
// (the parallel backend gives each worker its own ring).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace beholder6::netbase {

template <typename T>
class SpscRing {
 public:
  /// A ring holding at least `min_capacity` items (rounded up to a power
  /// of two, minimum 2). Allocates once, here; never again.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap *= 2;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// Producer side. False when the ring is full (the item is untouched);
  /// the producer decides whether to spin, yield, or drop.
  [[nodiscard]] bool try_push(const T& item) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    buf_[tail & mask_] = item;
    tail_.store(tail + 1, std::memory_order_release);
    const std::uint64_t fill = tail + 1 - head_cache_;
    if (fill > high_water_) high_water_ = fill;
    return true;
  }

  /// Consumer side. False when the ring is empty (out is untouched).
  [[nodiscard]] bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = buf_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Deepest fill level the producer has observed (a lower bound on the
  /// true maximum: the producer's view of head lags). Producer-side only —
  /// read it after the producer is done, or from the producer thread.
  [[nodiscard]] std::uint64_t high_water() const { return high_water_; }

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;

  // Producer-owned line: tail plus its cached view of head.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
  std::uint64_t high_water_ = 0;

  // Consumer-owned line: head plus its cached view of tail.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
};

}  // namespace beholder6::netbase
