// netbase/checksum.hpp — RFC 1071 Internet checksum and the ICMPv6 / TCP /
// UDP pseudo-header checksum over IPv6 (RFC 8200 §8.1).
//
// Yarrp6 depends on checksums twice: (1) transport checksums must stay
// constant per target so per-flow load balancers see one flow — achieved via
// a 2-byte "fudge" field; (2) a checksum of the target address rides in the
// source port / ICMPv6 id to detect in-path rewriting.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

#include "netbase/ipv6.hpp"

namespace beholder6 {

/// One's-complement sum folding for the Internet checksum. Accumulate with
/// add(), then finish() yields the complemented 16-bit checksum.
class ChecksumAccumulator {
 public:
  /// Add a byte range; ranges may be added in any 16-bit aligned chunks. A
  /// trailing odd byte is padded with zero, so only the final add() may have
  /// odd length.
  ///
  /// Bulk bytes go in 8 at a time: the one's-complement sum is arithmetic
  /// mod 0xffff, and 2^16 ≡ 1 (mod 0xffff), so folding a big-endian 64-bit
  /// block equals summing its four 16-bit words — this sits on the
  /// per-reply synthesis path, where byte-at-a-time loops show up.
  void add(std::span<const std::uint8_t> data) {
    std::size_t i = 0;
    if (data.size() >= 8) {
      std::uint64_t wide = 0;
      for (; i + 8 <= data.size(); i += 8) {
        std::uint64_t w;
        std::memcpy(&w, data.data() + i, 8);
        if constexpr (std::endian::native == std::endian::little)
          w = __builtin_bswap64(w);
        wide += w;
        if (wide < w) ++wide;  // end-around carry: 2^64 ≡ 1 (mod 0xffff)
      }
      while (wide >> 16) wide = (wide & 0xffff) + (wide >> 16);
      sum_ += static_cast<std::uint32_t>(wide);
    }
    for (; i + 1 < data.size(); i += 2)
      sum_ += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
    if (i < data.size()) sum_ += static_cast<std::uint32_t>(data[i]) << 8;
  }

  void add_u16(std::uint16_t v) { sum_ += v; }
  void add_u32(std::uint32_t v) { sum_ += (v >> 16) + (v & 0xffff); }

  /// Fold carries and complement. 0 is returned as 0xffff per convention.
  [[nodiscard]] std::uint16_t finish() const {
    std::uint32_t s = sum_;
    while (s >> 16) s = (s & 0xffff) + (s >> 16);
    const auto c = static_cast<std::uint16_t>(~s);
    return c == 0 ? 0xffff : c;
  }

  /// Raw (un-complemented) folded sum; used to compute checksum fudge.
  [[nodiscard]] std::uint16_t folded_sum() const {
    std::uint32_t s = sum_;
    while (s >> 16) s = (s & 0xffff) + (s >> 16);
    return static_cast<std::uint16_t>(s);
  }

 private:
  std::uint32_t sum_ = 0;
};

/// Plain RFC 1071 checksum of a byte range.
[[nodiscard]] inline std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

/// Transport checksum over the IPv6 pseudo-header (src, dst, length,
/// next-header) plus the transport payload. Used for ICMPv6, TCP and UDP.
[[nodiscard]] inline std::uint16_t pseudo_header_checksum(
    const Ipv6Addr& src, const Ipv6Addr& dst, std::uint8_t next_header,
    std::span<const std::uint8_t> transport) {
  ChecksumAccumulator acc;
  acc.add(src.bytes());
  acc.add(dst.bytes());
  acc.add_u32(static_cast<std::uint32_t>(transport.size()));
  acc.add_u16(next_header);
  acc.add(transport);
  return acc.finish();
}

/// The 16-bit target-address checksum yarrp6 stores in the source port /
/// ICMPv6 identifier so replies reveal in-path destination rewriting.
[[nodiscard]] inline std::uint16_t target_checksum(const Ipv6Addr& target) {
  return internet_checksum(target.bytes());
}

}  // namespace beholder6
