// netbase/flat_map.hpp — open-addressing hash containers for hot paths.
//
// FlatMap and FlatSet replace std::unordered_map/set where lookups sit in
// the per-probe fast path (token buckets, learned interfaces, fragment-id
// counters, negative caches, route/as-path memos). Node-based containers
// pay one heap allocation per element and a pointer chase per lookup; these
// store entries contiguously in one power-of-two slot array probed
// linearly, so a warm lookup is one hash, one cache line, and usually zero
// branches mispredicted — and inserting into a pre-reserved table allocates
// nothing.
//
// Deliberate scope limits, matching how the library uses them:
//   * keys and values must be default-constructible and copy/movable;
//   * erase uses tombstones (reclaimed on rehash), so heavy churn should
//     call rehash() occasionally — our uses erase rarely or never;
//   * iteration visits slots in table order, which depends on capacity and
//     insertion history. Nothing observable may depend on it (the
//     determinism suite runs the same sequences through both container
//     families to prove reply streams never see the difference);
//   * unlike unordered_map's pair<const K, V>, iterators and find() yield
//     a mutable std::pair<K, V>& (const keys would forbid the move-based
//     rehash). Writing through ->first desyncs the entry from its hash and
//     corrupts the table — mutate values only, never keys.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "netbase/attr.hpp"
#include "netbase/huge_alloc.hpp"
#include "netbase/rng.hpp"

namespace beholder6::netbase {

/// Default hash: finalize with splitmix64 so integral keys with low-entropy
/// bits (sequential ids, pointers) still spread across the table.
template <typename K>
struct FlatHash {
  std::size_t operator()(const K& k) const noexcept {
    return static_cast<std::size_t>(splitmix64(static_cast<std::uint64_t>(k)));
  }
};

namespace detail {

enum class SlotState : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

/// Shared open-addressing core. Entry is the stored record; KeyOf projects
/// the key out of an entry (identity for sets, .first for maps).
template <typename Entry, typename Key, typename Hash, typename KeyOf>
class FlatTable {
 public:
  FlatTable() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Drop every element; keeps the allocated table (pool-friendly).
  void clear() {
    if (size_ == 0 && used_ == 0) return;
    std::fill(state_.begin(), state_.end(), SlotState::kEmpty);
    size_ = 0;
    used_ = 0;
  }

  /// Grow (and purge tombstones) so `n` elements fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t want = 16;
    while (want * 3 / 4 < n) want *= 2;
    if (want > slots_.size()) rehash(want);
  }

  /// Rebuild at the current size's natural capacity, purging tombstones.
  void rehash() { rehash(0); }

  template <typename Table, typename E>
  class Iter {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::remove_const_t<E>;
    using reference = E&;
    using pointer = E*;
    using difference_type = std::ptrdiff_t;

    Iter() = default;
    Iter(Table* t, std::size_t i) : t_(t), i_(i) { skip(); }
    E& operator*() const { return t_->slots_[i_]; }
    E* operator->() const { return &t_->slots_[i_]; }
    Iter& operator++() {
      ++i_;
      skip();
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) { return a.i_ == b.i_; }

   private:
    void skip() {
      while (i_ < t_->state_.size() && t_->state_[i_] != SlotState::kFull) ++i_;
    }
    Table* t_ = nullptr;
    std::size_t i_ = 0;
    friend class FlatTable;
  };

  using iterator = Iter<FlatTable, Entry>;
  using const_iterator = Iter<const FlatTable, const Entry>;

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, state_.size()}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, state_.size()}; }

  iterator find(const Key& key) {
    const auto i = find_index(key);
    return {this, i == kNpos ? state_.size() : i};
  }
  const_iterator find(const Key& key) const {
    const auto i = find_index(key);
    return {this, i == kNpos ? state_.size() : i};
  }
  [[nodiscard]] bool contains(const Key& key) const { return find_index(key) != kNpos; }

  /// Insert `entry` unless its key is present; returns (iterator, inserted).
  std::pair<iterator, bool> insert_entry(Entry&& entry) {
    maybe_grow();
    const Key& key = KeyOf{}(entry);
    std::size_t i = Hash{}(key) & mask();
    std::size_t first_tomb = kNpos;
    for (;; i = (i + 1) & mask()) {
      if (state_[i] == SlotState::kFull) {
        if (KeyOf{}(slots_[i]) == key) return {iterator{this, i}, false};
      } else if (state_[i] == SlotState::kTombstone) {
        if (first_tomb == kNpos) first_tomb = i;
      } else {  // empty: key absent
        if (first_tomb != kNpos) {
          i = first_tomb;  // reuse the tombstone
        } else {
          ++used_;
        }
        state_[i] = SlotState::kFull;
        slots_[i] = std::move(entry);
        ++size_;
        return {iterator{this, i}, true};
      }
    }
  }

  std::size_t erase(const Key& key) {
    const auto i = find_index(key);
    if (i == kNpos) return 0;
    state_[i] = SlotState::kTombstone;
    slots_[i] = Entry{};  // release any owned storage now
    --size_;
    return 1;
  }

 protected:
  static constexpr std::size_t kNpos = ~std::size_t{0};

  [[nodiscard]] std::size_t mask() const { return slots_.size() - 1; }

  [[nodiscard]] std::size_t find_index(const Key& key) const {
    if (slots_.empty()) return kNpos;
    std::size_t i = Hash{}(key) & mask();
    for (;; i = (i + 1) & mask()) {
      if (state_[i] == SlotState::kEmpty) return kNpos;
      if (state_[i] == SlotState::kFull && KeyOf{}(slots_[i]) == key) return i;
    }
  }

  void maybe_grow() {
    // Grow on load factor 3/4 counting tombstones, so probe chains stay
    // short even under erase-heavy use.
    if (slots_.empty() || (used_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
  }

  // Tables grow to megabytes on big campaigns and are probed in random
  // order; 2 MB backing pages keep lookups off the TLB-walk path (small
  // tables fall through to plain operator new inside the allocator).
  using EntryVec = std::vector<Entry, HugePageAllocator<Entry>>;
  using StateVec = std::vector<SlotState, HugePageAllocator<SlotState>>;

  // Cold gate: the only allocating branch of the insert path. B6_COLDPATH
  // keeps it outlined so tools/check_noalloc.py sees it as a named node in
  // the Release call graph (it is on that tool's allowlist); in steady
  // state a pre-reserved table never re-enters it.
  B6_COLDPATH void rehash(std::size_t want) {
    std::size_t cap = 16;
    while (cap * 3 / 4 < size_ + 1) cap *= 2;
    if (want > cap) cap = want;
    EntryVec old_slots = std::move(slots_);
    StateVec old_state = std::move(state_);
    slots_.assign(cap, Entry{});
    state_.assign(cap, SlotState::kEmpty);
    size_ = 0;
    used_ = 0;
    for (std::size_t i = 0; i < old_state.size(); ++i)
      if (old_state[i] == SlotState::kFull) insert_entry(std::move(old_slots[i]));
  }

  EntryVec slots_;
  StateVec state_;
  std::size_t size_ = 0;  // live entries
  std::size_t used_ = 0;  // live entries + tombstones (probe-chain load)
};

struct KeyIdentity {
  template <typename E>
  const E& operator()(const E& e) const {
    return e;
  }
};

struct KeyFirst {
  template <typename E>
  const auto& operator()(const E& e) const {
    return e.first;
  }
};

}  // namespace detail

/// Open-addressing hash map. Iteration yields std::pair<K, V>& in table
/// order (not insertion order).
template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap
    : public detail::FlatTable<std::pair<K, V>, K, Hash, detail::KeyFirst> {
  using Base = detail::FlatTable<std::pair<K, V>, K, Hash, detail::KeyFirst>;

 public:
  using Base::find;

  /// Insert (key, value) unless key is present; returns (iterator, fresh).
  template <typename... Args>
  std::pair<typename Base::iterator, bool> emplace(const K& key, Args&&... args) {
    return Base::insert_entry(std::pair<K, V>{key, V{std::forward<Args>(args)...}});
  }
  std::pair<typename Base::iterator, bool> insert(std::pair<K, V> kv) {
    return Base::insert_entry(std::move(kv));
  }

  V& operator[](const K& key) { return emplace(key).first->second; }

  /// Content equality, independent of table layout (like unordered_map's).
  /// Instantiated only where used, so V need not always be comparable.
  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    if (a.size() != b.size()) return false;
    for (const auto& [k, v] : a) {
      const auto it = b.find(k);
      if (it == b.end() || !(it->second == v)) return false;
    }
    return true;
  }

  [[nodiscard]] const V& at(const K& key) const {
    const auto i = Base::find_index(key);
    if (i == Base::kNpos) throw std::out_of_range("FlatMap::at");
    return Base::slots_[i].second;
  }
  [[nodiscard]] V& at(const K& key) {
    const auto i = Base::find_index(key);
    if (i == Base::kNpos) throw std::out_of_range("FlatMap::at");
    return Base::slots_[i].second;
  }
};

/// Open-addressing hash set.
template <typename K, typename Hash = FlatHash<K>>
class FlatSet : public detail::FlatTable<K, K, Hash, detail::KeyIdentity> {
  using Base = detail::FlatTable<K, K, Hash, detail::KeyIdentity>;

 public:
  std::pair<typename Base::iterator, bool> insert(K key) {
    return Base::insert_entry(std::move(key));
  }

  /// Content equality, independent of table layout (like unordered_set's).
  friend bool operator==(const FlatSet& a, const FlatSet& b) {
    if (a.size() != b.size()) return false;
    for (const auto& k : a)
      if (!b.contains(k)) return false;
    return true;
  }
};

}  // namespace beholder6::netbase
