#include "netbase/prefix.hpp"

#include <charconv>
#include <stdexcept>

namespace beholder6 {

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    auto a = Ipv6Addr::parse(text);
    if (!a) return std::nullopt;
    return Prefix{*a, 128};
  }
  auto a = Ipv6Addr::parse(text.substr(0, slash));
  if (!a) return std::nullopt;
  const auto len_text = text.substr(slash + 1);
  unsigned len = 0;
  const auto [p, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || p != len_text.data() + len_text.size() || len > 128)
    return std::nullopt;
  return Prefix{*a, len};
}

Prefix Prefix::must_parse(std::string_view text) {
  auto p = parse(text);
  if (!p) throw std::invalid_argument("bad IPv6 prefix: " + std::string(text));
  return *p;
}

}  // namespace beholder6
