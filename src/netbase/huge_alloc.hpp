// netbase/huge_alloc.hpp — 2 MB-page backing for large hot tables.
//
// The simnet's per-campaign state (route cache, negative caches, learned
// interfaces) reaches tens to hundreds of megabytes and is accessed in
// random probe order. On 4 KB pages that working set costs a dTLB miss —
// a page walk — per dereference, which on large-LLC machines dominates the
// fetch itself. Backing allocations above a threshold with 2 MB-aligned
// memory and MADV_HUGEPAGE keeps the whole table under a handful of TLB
// entries (bench/hotpath.cpp is the regression harness that shows the
// difference).
//
// Stateless std-allocator; small allocations fall through to operator new,
// and non-Linux builds compile to exactly that fallback plus alignment.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>

#ifdef __linux__
#include <sys/mman.h>
#endif

namespace beholder6::netbase {

template <typename T>
struct HugePageAllocator {
  using value_type = T;

  static constexpr std::size_t kHugeThreshold = std::size_t{1} << 20;  // 1 MB
  static constexpr std::size_t kHugeAlign = std::size_t{2} << 20;      // 2 MB

  HugePageAllocator() = default;
  template <typename U>
  HugePageAllocator(const HugePageAllocator<U>&) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (bytes >= kHugeThreshold) {
      const std::size_t padded = (bytes + kHugeAlign - 1) & ~(kHugeAlign - 1);
      // Via aligned operator new (not aligned_alloc) so binaries that
      // replace the global allocator — bench/hotpath.cpp's counting hook —
      // observe this path too.
      void* p = ::operator new(padded, std::align_val_t{kHugeAlign});
#ifdef __linux__
      ::madvise(p, padded, MADV_HUGEPAGE);
#endif
      return static_cast<T*>(p);
    }
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__)
      return static_cast<T*>(::operator new(bytes, std::align_val_t{alignof(T)}));
    else
      return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (n * sizeof(T) >= kHugeThreshold) {
      ::operator delete(p, std::align_val_t{kHugeAlign});
    } else if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      ::operator delete(p, std::align_val_t{alignof(T)});
    } else {
      ::operator delete(p);
    }
  }

  template <typename U>
  friend bool operator==(const HugePageAllocator&, const HugePageAllocator<U>&) {
    return true;
  }
};

}  // namespace beholder6::netbase
