// netbase/ipv6.hpp — IPv6 address value type (RFC 4291 / RFC 5952).
//
// Ipv6Addr is a trivially-copyable 128-bit value with network byte order
// storage. It provides parsing and canonical text formatting (RFC 5952 zero
// compression), bit-level accessors used by the target-generation pipeline
// (prefix masking, bit extraction, common-prefix length), and conversions to
// a pair of host-order 64-bit halves (subnet prefix / interface identifier)
// as the paper's vernacular uses them.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace beholder6 {

/// A 128-bit IPv6 address stored in network byte order.
class Ipv6Addr {
 public:
  /// Zero address "::".
  constexpr Ipv6Addr() : bytes_{} {}

  /// Construct from 16 raw bytes in network order.
  constexpr explicit Ipv6Addr(const std::array<std::uint8_t, 16>& b) : bytes_(b) {}

  /// Construct from two host-order 64-bit halves: high = subnet prefix bits,
  /// low = interface identifier (IID) bits.
  static constexpr Ipv6Addr from_halves(std::uint64_t hi, std::uint64_t lo) {
    std::array<std::uint8_t, 16> b{};
    for (int i = 0; i < 8; ++i) {
      b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(hi >> (56 - 8 * i));
      b[static_cast<std::size_t>(8 + i)] = static_cast<std::uint8_t>(lo >> (56 - 8 * i));
    }
    return Ipv6Addr{b};
  }

  /// Parse presentation format (full, compressed "::", mixed case).
  /// Returns nullopt on malformed input. Does not accept IPv4-mapped dotted
  /// quads (the datasets in this work are pure IPv6).
  static std::optional<Ipv6Addr> parse(std::string_view text);

  /// Parse or throw std::invalid_argument; convenience for literals in tests.
  static Ipv6Addr must_parse(std::string_view text);

  /// Canonical RFC 5952 text: lowercase hex, longest zero run compressed
  /// (leftmost on tie, never a single group).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }

  /// High (subnet prefix) half as host-order u64.
  [[nodiscard]] constexpr std::uint64_t hi() const { return half(0); }
  /// Low (interface identifier) half as host-order u64.
  [[nodiscard]] constexpr std::uint64_t lo() const { return half(8); }

  /// The i-th bit counting from the most significant (bit 0 = MSB of byte 0).
  [[nodiscard]] constexpr bool bit(unsigned i) const {
    return (bytes_[i / 8] >> (7 - i % 8)) & 1U;
  }

  /// Copy with the i-th bit (MSB-first indexing) set to `v`.
  [[nodiscard]] constexpr Ipv6Addr with_bit(unsigned i, bool v) const {
    auto b = bytes_;
    const std::uint8_t mask = static_cast<std::uint8_t>(1U << (7 - i % 8));
    if (v) b[i / 8] |= mask; else b[i / 8] &= static_cast<std::uint8_t>(~mask);
    return Ipv6Addr{b};
  }

  /// Address with all bits after the first `len` zeroed (prefix base address).
  [[nodiscard]] Ipv6Addr masked(unsigned len) const;

  /// Bitwise OR; used by target synthesis to install an IID into a prefix.
  [[nodiscard]] Ipv6Addr operator|(const Ipv6Addr& o) const;

  /// Number of leading bits equal between *this and `o` (0..128).
  [[nodiscard]] unsigned common_prefix_len(const Ipv6Addr& o) const;

  /// Nybble (4-bit group) i in [0,32), MSB-first; used by 6Gen-style clustering.
  [[nodiscard]] constexpr std::uint8_t nybble(unsigned i) const {
    const std::uint8_t byte = bytes_[i / 2];
    return (i % 2 == 0) ? static_cast<std::uint8_t>(byte >> 4)
                        : static_cast<std::uint8_t>(byte & 0x0f);
  }

  /// Copy with nybble i replaced by v (low 4 bits of v).
  [[nodiscard]] constexpr Ipv6Addr with_nybble(unsigned i, std::uint8_t v) const {
    auto b = bytes_;
    if (i % 2 == 0) b[i / 2] = static_cast<std::uint8_t>((b[i / 2] & 0x0f) | (v << 4));
    else            b[i / 2] = static_cast<std::uint8_t>((b[i / 2] & 0xf0) | (v & 0x0f));
    return Ipv6Addr{b};
  }

  friend constexpr auto operator<=>(const Ipv6Addr& a, const Ipv6Addr& b) {
    return a.bytes_ <=> b.bytes_;
  }
  friend constexpr bool operator==(const Ipv6Addr& a, const Ipv6Addr& b) = default;

 private:
  [[nodiscard]] constexpr std::uint64_t half(std::size_t off) const {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | bytes_[off + i];
    return v;
  }

  std::array<std::uint8_t, 16> bytes_;
};

/// FNV-1a hash over the 16 bytes; suitable for unordered containers.
struct Ipv6AddrHash {
  std::size_t operator()(const Ipv6Addr& a) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (auto b : a.bytes()) { h ^= b; h *= 1099511628211ULL; }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace beholder6
