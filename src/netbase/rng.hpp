// netbase/rng.hpp — deterministic, splittable PRNG used across the library.
//
// All stochastic behaviour in beholder6 (topology generation, seed sampling,
// permutation keys) is driven by SplitMix64/Xoshiro256** so campaigns are
// exactly reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>

namespace beholder6 {

/// SplitMix64: stateless mix of a counter; used for key derivation and as
/// the seeding function for Xoshiro256**.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Xoshiro256**: a small fast PRNG with 256-bit state. Satisfies
/// UniformRandomBitGenerator so it can drive <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& w : s_) w = x = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection to avoid bias.
  constexpr std::uint64_t below(std::uint64_t n) {
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t v = (*this)();
    while (v >= limit) v = (*this)();
    return v % n;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  constexpr bool chance(double p) { return uniform() < p; }

  /// Derive an independent child generator; children with distinct tags are
  /// statistically independent of each other and the parent.
  [[nodiscard]] constexpr Rng split(std::uint64_t tag) const {
    return Rng{splitmix64(s_[0] ^ splitmix64(tag ^ s_[3]))};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace beholder6
