// netbase/prefix.hpp — IPv6 prefix (base address + length) value type.
#pragma once

#include <compare>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/ipv6.hpp"

namespace beholder6 {

/// An IPv6 prefix: a base address and a length in [0,128]. The base address
/// is always stored canonically masked (bits past `len` are zero), so two
/// Prefix values compare equal iff they denote the same address block.
class Prefix {
 public:
  constexpr Prefix() : base_{}, len_{0} {}

  Prefix(const Ipv6Addr& base, unsigned len)
      : base_(base.masked(len)), len_(len > 128 ? 128u : len) {}

  /// Parse "addr/len"; a bare address parses as a /128. Returns nullopt on
  /// malformed input.
  static std::optional<Prefix> parse(std::string_view text);

  /// Parse or throw std::invalid_argument.
  static Prefix must_parse(std::string_view text);

  [[nodiscard]] const Ipv6Addr& base() const { return base_; }
  [[nodiscard]] unsigned len() const { return len_; }

  /// True iff `a` falls inside this prefix.
  [[nodiscard]] bool contains(const Ipv6Addr& a) const {
    return a.common_prefix_len(base_) >= len_;
  }

  /// True iff `o` is equal to or more specific than this prefix.
  [[nodiscard]] bool covers(const Prefix& o) const {
    return o.len_ >= len_ && contains(o.base_);
  }

  [[nodiscard]] std::string to_string() const {
    return base_.to_string() + "/" + std::to_string(len_);
  }

  friend auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Ipv6Addr base_;
  unsigned len_;
};

struct PrefixHash {
  std::size_t operator()(const Prefix& p) const noexcept {
    return Ipv6AddrHash{}(p.base()) * 131 + p.len();
  }
};

}  // namespace beholder6
