// netbase/permutation.hpp — keyed random permutation over [0, n).
//
// Yarrp's core trick: iterate the (target × TTL) probe space in a keyed
// pseudo-random order without storing it. We implement a balanced Feistel
// network over the smallest even-bit-width domain covering n, and
// cycle-walk values that land outside [0, n). Every value in [0, n) is
// visited exactly once, and the permutation is invertible, so the prober
// needs no per-probe state at all.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "netbase/rng.hpp"

namespace beholder6 {

/// A keyed bijection over [0, n). Deterministic in (key, n).
class Permutation {
 public:
  /// n must be >= 1; key selects one of 2^64 permutations.
  Permutation(std::uint64_t n, std::uint64_t key) : n_(n) {
    if (n == 0) throw std::invalid_argument("Permutation: empty domain");
    // Domain 2^(2*half_bits_) >= n with the smallest such half width (>=1).
    half_bits_ = 1;
    while ((half_bits_ < 32) && ((1ULL << (2 * half_bits_)) < n)) ++half_bits_;
    for (unsigned r = 0; r < kRounds; ++r)
      round_key_[r] = splitmix64(key ^ (0x517cc1b727220a95ULL * (r + 1)));
  }

  [[nodiscard]] std::uint64_t size() const { return n_; }

  /// Map index i in [0, n) to its permuted position in [0, n).
  [[nodiscard]] std::uint64_t map(std::uint64_t i) const {
    if (i >= n_) throw std::out_of_range("Permutation::map");
    std::uint64_t v = encrypt(i);
    while (v >= n_) v = encrypt(v);  // cycle-walk back into the domain
    return v;
  }

  /// Inverse of map().
  [[nodiscard]] std::uint64_t unmap(std::uint64_t v) const {
    if (v >= n_) throw std::out_of_range("Permutation::unmap");
    std::uint64_t i = decrypt(v);
    while (i >= n_) i = decrypt(i);
    return i;
  }

 private:
  static constexpr unsigned kRounds = 4;

  [[nodiscard]] std::uint64_t feistel_f(std::uint64_t half, unsigned round) const {
    return splitmix64(half ^ round_key_[round]) & mask();
  }

  [[nodiscard]] std::uint64_t mask() const { return (1ULL << half_bits_) - 1; }

  [[nodiscard]] std::uint64_t encrypt(std::uint64_t x) const {
    std::uint64_t l = x >> half_bits_, r = x & mask();
    for (unsigned i = 0; i < kRounds; ++i) {
      const std::uint64_t nl = r;
      r = l ^ feistel_f(r, i);
      l = nl;
    }
    return (l << half_bits_) | r;
  }

  [[nodiscard]] std::uint64_t decrypt(std::uint64_t x) const {
    std::uint64_t l = x >> half_bits_, r = x & mask();
    for (unsigned i = kRounds; i-- > 0;) {
      const std::uint64_t nr = l;
      l = r ^ feistel_f(l, i);
      r = nr;
    }
    return (l << half_bits_) | r;
  }

  std::uint64_t n_;
  unsigned half_bits_;
  std::uint64_t round_key_[kRounds]{};
};

}  // namespace beholder6
