// netbase/attr.hpp — function attributes the performance contracts lean on.
//
// B6_COLDPATH marks the one-time-setup / growth half of a hot-path
// function: table rehashes, pool refills, route-cache misses. The
// attribute does two jobs at once:
//
//   * codegen: `cold` moves the body out of the hot text and biases every
//     branch toward it as not-taken; `noinline` keeps it from being merged
//     back into its caller at high optimization levels;
//   * analysis: tools/check_noalloc.py walks the Release call graph from
//     the hot-path entry points and fails on any reachable allocation —
//     *except* through the named cold gates in its allowlist. Those gates
//     only exist as call-graph nodes because this attribute keeps them
//     outlined; removing B6_COLDPATH from a gated function silently
//     re-inlines its allocation into the hot caller and turns the checker
//     red, which is exactly the intended failure mode.
//
// Keep this list honest: a function wearing B6_COLDPATH must be off the
// steady-state path by construction (amortized growth, first-touch fill,
// error handling), not merely "usually rare".
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define B6_COLDPATH __attribute__((noinline, cold))
#else
#define B6_COLDPATH
#endif
