// netbase/eui64.hpp — EUI-64 interface identifiers (RFC 4291 appendix A).
//
// Modified EUI-64 IIDs embed a MAC address: the 24-bit OUI (with the
// universal/local bit flipped), the bytes ff:fe, then the 24-bit NIC
// specific part. The paper both classifies seed/response IIDs as EUI-64 and
// shows that CPE routers in two ISPs expose two manufacturers' OUIs; simnet
// reproduces that by assigning EUI-64 addresses from per-ISP OUI pools.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "netbase/ipv6.hpp"

namespace beholder6 {

/// A 48-bit IEEE MAC address.
struct Mac {
  std::array<std::uint8_t, 6> bytes{};

  /// The 24-bit Organizationally Unique Identifier.
  [[nodiscard]] std::uint32_t oui() const {
    return static_cast<std::uint32_t>(bytes[0]) << 16 |
           static_cast<std::uint32_t>(bytes[1]) << 8 | bytes[2];
  }

  friend bool operator==(const Mac&, const Mac&) = default;
};

/// Build the modified EUI-64 IID (low 64 bits) for a MAC.
[[nodiscard]] inline std::uint64_t eui64_iid(const Mac& mac) {
  std::uint64_t iid = 0;
  iid |= static_cast<std::uint64_t>(mac.bytes[0] ^ 0x02) << 56;  // flip U/L bit
  iid |= static_cast<std::uint64_t>(mac.bytes[1]) << 48;
  iid |= static_cast<std::uint64_t>(mac.bytes[2]) << 40;
  iid |= 0xfffeULL << 24;
  iid |= static_cast<std::uint64_t>(mac.bytes[3]) << 16;
  iid |= static_cast<std::uint64_t>(mac.bytes[4]) << 8;
  iid |= static_cast<std::uint64_t>(mac.bytes[5]);
  return iid;
}

/// If the low 64 bits of `a` are a modified EUI-64 IID, recover the MAC.
[[nodiscard]] inline std::optional<Mac> eui64_extract(const Ipv6Addr& a) {
  const std::uint64_t iid = a.lo();
  if (((iid >> 24) & 0xffff) != 0xfffe) return std::nullopt;
  Mac m;
  m.bytes[0] = static_cast<std::uint8_t>((iid >> 56) ^ 0x02);
  m.bytes[1] = static_cast<std::uint8_t>(iid >> 48);
  m.bytes[2] = static_cast<std::uint8_t>(iid >> 40);
  m.bytes[3] = static_cast<std::uint8_t>(iid >> 16);
  m.bytes[4] = static_cast<std::uint8_t>(iid >> 8);
  m.bytes[5] = static_cast<std::uint8_t>(iid);
  return m;
}

/// True iff the address IID looks like modified EUI-64 (the ff:fe marker).
[[nodiscard]] inline bool is_eui64(const Ipv6Addr& a) {
  return ((a.lo() >> 24) & 0xffff) == 0xfffe;
}

}  // namespace beholder6
