// netbase/dcheck.hpp — leveled runtime invariants for the determinism
// contract.
//
// The static linter (tools/lint_determinism.py) covers what a regex can
// see; these macros cover what it cannot: protocol invariants that only
// hold while the program runs — every epoch-family child arrives at its
// barrier exactly once per epoch, the canonical reply merge really is
// nondecreasing in (vtime, shard, subshard, arrival), packet pools and the
// inject path are never re-entered. A violated invariant here means some
// future run can produce different bytes, so the response is an immediate
// loud abort, never a best-effort continue.
//
// Levels (compile-time, BEHOLDER6_DCHECK_LEVEL, normally injected by the
// BEHOLDER6_DCHECK CMake option):
//   0  everything compiles away (argument expressions are not evaluated);
//   1  cheap O(1) checks on control paths — branch-and-compare cost,
//      enabled by default in every build including Release CI;
//   2  adds expensive sweeps (whole-stream order verification, duplicate
//      scans) for the sanitizer jobs and deep debugging.
//
// B6_DCHECK(cond, msg)   — level >= 1.
// B6_DCHECK2(cond, msg)  — level >= 2.
//
// Checks must never have side effects the program relies on: disabling a
// level must not change a single output byte.
#pragma once

#include <cstdio>
#include <cstdlib>

#ifndef BEHOLDER6_DCHECK_LEVEL
#define BEHOLDER6_DCHECK_LEVEL 1
#endif

namespace beholder6::netbase::detail {

[[noreturn]] inline void dcheck_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr,
               "beholder6: DCHECK failed: %s\n  at %s:%d\n  %s\n"
               "  (a determinism invariant is broken; aborting rather than "
               "emitting unreproducible results)\n",
               expr, file, line, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace beholder6::netbase::detail

// Disabled checks keep the condition in an unevaluated operand so typos
// still fail to compile and variables never become "unused".
#define B6_DCHECK_DISABLED_(cond) ((void)sizeof((cond) ? 1 : 0))

#if BEHOLDER6_DCHECK_LEVEL >= 1
#define B6_DCHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond))                                                          \
      ::beholder6::netbase::detail::dcheck_fail(#cond, __FILE__, __LINE__, \
                                                msg);                     \
  } while (0)
#else
#define B6_DCHECK(cond, msg) B6_DCHECK_DISABLED_(cond)
#endif

#if BEHOLDER6_DCHECK_LEVEL >= 2
#define B6_DCHECK2(cond, msg)                                             \
  do {                                                                    \
    if (!(cond))                                                          \
      ::beholder6::netbase::detail::dcheck_fail(#cond, __FILE__, __LINE__, \
                                                msg);                     \
  } while (0)
#else
#define B6_DCHECK2(cond, msg) B6_DCHECK_DISABLED_(cond)
#endif
