#include "seeds/entropy.hpp"

#include <cmath>

namespace beholder6::seeds {

double NybbleStats::entropy() const {
  const auto n = total();
  if (n == 0) return 0.0;
  double h = 0.0;
  for (const auto c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(n);
    h -= p * std::log2(p);
  }
  return h;
}

std::uint64_t NybbleStats::total() const {
  std::uint64_t n = 0;
  for (const auto c : counts) n += c;
  return n;
}

namespace {

/// Pack the nybbles [first, last] of `a` into a u64 key (<= 16 nybbles per
/// segment; longer runs are split by the segmentation pass).
std::uint64_t pack_segment(const Ipv6Addr& a, unsigned first, unsigned last) {
  std::uint64_t v = 0;
  for (unsigned i = first; i <= last; ++i) v = (v << 4) | a.nybble(i);
  return v;
}

}  // namespace

EntropyModel EntropyModel::fit(const std::vector<Ipv6Addr>& addrs, Params params) {
  EntropyModel model;
  model.n_ = addrs.size();
  if (addrs.empty()) return model;

  for (const auto& a : addrs)
    for (unsigned i = 0; i < 32; ++i) ++model.stats_[i].counts[a.nybble(i)];

  auto kind_of = [&](double h) {
    if (h <= params.constant_below) return Segment::Kind::kConstant;
    if (h >= params.random_above) return Segment::Kind::kRandom;
    return Segment::Kind::kValueSet;
  };

  // Segment nybbles into runs of one kind, capped at 16 nybbles so joint
  // values pack into a u64.
  for (unsigned i = 0; i < 32;) {
    const auto kind = kind_of(model.stats_[i].entropy());
    unsigned j = i;
    double sum = 0;
    while (j < 32 && kind_of(model.stats_[j].entropy()) == kind && j - i < 16) {
      sum += model.stats_[j].entropy();
      ++j;
    }
    Segment seg;
    seg.first = i;
    seg.last = j - 1;
    seg.kind = kind;
    seg.mean_entropy = sum / static_cast<double>(j - i);
    model.segments_.push_back(seg);
    i = j;
  }

  // Joint value dictionaries for constant and value-set segments.
  model.segment_values_.resize(model.segments_.size());
  for (std::size_t s = 0; s < model.segments_.size(); ++s) {
    if (model.segments_[s].kind == Segment::Kind::kRandom) continue;
    for (const auto& a : addrs)
      ++model.segment_values_[s][pack_segment(a, model.segments_[s].first,
                                              model.segments_[s].last)];
  }
  return model;
}

std::vector<Ipv6Addr> EntropyModel::generate(std::size_t count, Rng rng) const {
  std::vector<Ipv6Addr> out;
  if (n_ == 0 || count == 0) return out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    Ipv6Addr addr;
    for (std::size_t s = 0; s < segments_.size(); ++s) {
      const auto& seg = segments_[s];
      const unsigned width = seg.last - seg.first + 1;
      std::uint64_t value;
      if (seg.kind == Segment::Kind::kRandom) {
        value = rng() & ((width >= 16) ? ~0ULL : ((1ULL << (4 * width)) - 1));
      } else {
        // Weighted draw from the joint observed values.
        const auto& dict = segment_values_[s];
        std::uint64_t total = 0;
        for (const auto& [v, w] : dict) total += w;
        std::uint64_t pick = rng.below(total);
        value = dict.begin()->first;
        for (const auto& [v, w] : dict) {
          if (pick < w) {
            value = v;
            break;
          }
          pick -= w;
        }
      }
      for (unsigned i = 0; i < width; ++i) {
        const auto nyb = static_cast<std::uint8_t>(
            (value >> (4 * (width - 1 - i))) & 0xf);
        addr = addr.with_nybble(seg.first + i, nyb);
      }
    }
    out.push_back(addr);
  }
  return out;
}

target::SeedList EntropyModel::generate_seeds(std::size_t count, Rng rng,
                                              const std::string& name) const {
  target::SeedList list;
  list.name = name;
  for (const auto& a : generate(count, rng)) list.entries.emplace_back(a, 128);
  return list;
}

}  // namespace beholder6::seeds
