// seeds/classify.hpp — addr6-style interface-identifier classification.
//
// The paper classifies seed and result addresses with the SI6 addr6 tool
// into three IID categories (Table 1 and Table 7): EUI-64 (embedded MAC),
// lowbyte (a run of zeroes followed by a low value), and randomized
// (no recognizable pattern). We reproduce those rules.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "netbase/eui64.hpp"
#include "netbase/ipv6.hpp"

namespace beholder6::seeds {

enum class IidClass : std::uint8_t {
  kEui64,
  kLowByte,
  kRandom,
};

/// Classify the interface identifier (low 64 bits) of an address.
[[nodiscard]] inline IidClass classify_iid(const Ipv6Addr& a) {
  if (is_eui64(a)) return IidClass::kEui64;
  // lowbyte: high 48 bits of the IID are zero and the low 16 carry a value
  // (this covers ::1, ::0042, and the common sequential server numberings).
  if ((a.lo() >> 16) == 0) return IidClass::kLowByte;
  return IidClass::kRandom;
}

[[nodiscard]] constexpr std::string_view to_string(IidClass c) {
  switch (c) {
    case IidClass::kEui64: return "eui64";
    case IidClass::kLowByte: return "lowbyte";
    case IidClass::kRandom: return "random";
  }
  return "?";
}

/// Aggregate classification over a set of addresses.
struct IidMix {
  std::size_t eui64 = 0;
  std::size_t lowbyte = 0;
  std::size_t random = 0;

  [[nodiscard]] std::size_t total() const { return eui64 + lowbyte + random; }
  [[nodiscard]] double frac_eui64() const { return ratio(eui64); }
  [[nodiscard]] double frac_lowbyte() const { return ratio(lowbyte); }
  [[nodiscard]] double frac_random() const { return ratio(random); }

 private:
  [[nodiscard]] double ratio(std::size_t n) const {
    return total() == 0 ? 0.0 : static_cast<double>(n) / static_cast<double>(total());
  }
};

[[nodiscard]] inline IidMix classify_all(std::span<const Ipv6Addr> addrs) {
  IidMix mix;
  for (const auto& a : addrs) {
    switch (classify_iid(a)) {
      case IidClass::kEui64: ++mix.eui64; break;
      case IidClass::kLowByte: ++mix.lowbyte; break;
      case IidClass::kRandom: ++mix.random; break;
    }
  }
  return mix;
}

}  // namespace beholder6::seeds
