#include "seeds/sources.hpp"

#include <algorithm>
#include <map>

namespace beholder6::seeds {

namespace {

using simnet::AsInfo;
using simnet::AsType;
using simnet::Topology;

std::size_t scaled(const SeedScale& sc, std::size_t n) {
  return static_cast<std::size_t>(static_cast<double>(n) * sc.scale);
}

void push_addr(SeedList& list, const Ipv6Addr& a) {
  list.entries.emplace_back(a, 128);
}

/// Random address inside a prefix.
Ipv6Addr random_in(const Prefix& p, Rng& rng) {
  const auto r = Ipv6Addr::from_halves(rng(), rng());
  Ipv6Addr suffix;
  for (unsigned b = p.len(); b < 128; ++b) suffix = suffix.with_bit(b, r.bit(b));
  return p.base() | suffix;
}

}  // namespace

SeedList make_caida(const Topology& topo, const SeedScale& sc, std::uint64_t seed) {
  // BGP-derived: every announced prefix of length <= 48 contributes its ::1
  // address plus random in-prefix addresses (Ark probes both).
  SeedList list;
  list.name = "caida";
  Rng rng{splitmix64(seed ^ 0xca1da)};
  topo.bgp().for_each([&](const Prefix& p, const simnet::Asn&) {
    if (p.len() > 48) return;
    push_addr(list, p.base() | Ipv6Addr::from_halves(0, 1));
    for (std::size_t i = 0; i < sc.caida_random_per_prefix; ++i)
      push_addr(list, random_in(p, rng));
  });
  return list;
}

SeedList make_fiebig(const Topology& topo, const SeedScale& sc, std::uint64_t seed) {
  // Reverse-DNS zone walking: networks that maintain ip6.arpa expose dense
  // runs of consecutive /64s with sequential lowbyte numbering. Roughly half
  // the walked space is registered in an RIR but not announced in BGP
  // (the paper finds only ~58% of fiebig z64 targets routed).
  SeedList list;
  list.name = "fiebig";
  Rng rng{splitmix64(seed ^ 0xf1eb16)};
  unsigned uni_idx = 0;
  for (const auto& as : topo.ases()) {
    if (as.type != AsType::kUniversity &&
        !(as.type == AsType::kContent && splitmix64(as.asn) % 3 == 0))
      continue;
    const auto subnets = topo.enumerate_subnets(as, scaled(sc, 18));
    for (const auto& s : subnets) {
      // A zone walk reveals a run of consecutive /64s from this base. For
      // /64s that really exist, the zone holds PTR records of the *actual*
      // hosts (plus the gateway) — which is what makes fiebig-known probing
      // reach live machines (Table 4's port-unreachable signature). /64s
      // that fell out of use leave stale sequential entries behind.
      const auto run = 2 + rng.below(sc.fiebig_run_len);
      for (std::uint64_t r = 0; r < run; ++r) {
        const auto hi = s.base().hi() + r;
        const auto probe64 = Ipv6Addr::from_halves(hi, 0);
        if (topo.subnet_exists(as, probe64)) {
          push_addr(list, topo.gateway_iface(as, Prefix{probe64, 64}));
          for (const auto& host : topo.hosts_in(as, Prefix{probe64, 64}))
            push_addr(list, host.addr);
        } else {
          const auto n = 1 + rng.below(3);
          for (std::uint64_t j = 0; j < n; ++j)
            push_addr(list, Ipv6Addr::from_halves(hi, j + 1));  // stale
        }
      }
    }
    // The matching unrouted rDNS space (registered, never announced).
    const auto unrouted_hi = (0x2a10'0000ULL + uni_idx++) << 32;
    const auto runs = scaled(sc, 14);
    for (std::size_t q = 0; q < runs; ++q) {
      const auto base = unrouted_hi | (rng.below(200) << 16) | (rng.below(64) << 8);
      const auto run = 2 + rng.below(sc.fiebig_run_len);
      for (std::uint64_t r = 0; r < run; ++r)
        for (std::uint64_t j = 1; j <= 2; ++j)
          push_addr(list, Ipv6Addr::from_halves(base + r, j));
    }
  }
  return list;
}

SeedList make_fdns_any(const Topology& topo, const SeedScale& sc, std::uint64_t seed) {
  // Forward-DNS ANY answers: server farms in content and university
  // networks, with a tail of 6to4 oddities.
  SeedList list;
  list.name = "fdns_any";
  Rng rng{splitmix64(seed ^ 0xfd45)};
  const auto cap = scaled(sc, sc.fdns_hosts);
  for (const auto& as : topo.ases()) {
    if (list.entries.size() >= cap) break;
    if (as.type != AsType::kContent && as.type != AsType::kUniversity) continue;
    for (const auto& s : topo.enumerate_subnets(as, scaled(sc, 120))) {
      for (const auto& host : topo.hosts_in(as, s)) push_addr(list, host.addr);
      if (rng.chance(0.5))
        push_addr(list, Ipv6Addr::from_halves(s.base().hi(), 1));  // www ::1
      if (list.entries.size() >= cap) break;
    }
  }
  // 6to4: embedded-IPv4 servers that leak into forward DNS.
  const auto n6to4 = std::max<std::size_t>(1, cap / 24);
  for (std::size_t i = 0; i < n6to4; ++i) {
    const auto v4 = rng() & 0xffffffff;
    push_addr(list, Ipv6Addr::from_halves((0x2002ULL << 48) | (v4 << 16), 1));
  }
  return list;
}

SeedList make_dnsdb(const Topology& topo, const SeedScale& sc, std::uint64_t seed) {
  // Passive DNS: fewer addresses, but it observes *every* network whose
  // clients resolve names — the broadest ASN coverage of any list.
  SeedList list;
  list.name = "dnsdb";
  Rng rng{splitmix64(seed ^ 0xd45db)};
  const auto per_as = std::max<std::size_t>(2, scaled(sc, sc.dnsdb_hosts) /
                                                   std::max<std::size_t>(1, topo.ases().size()));
  for (const auto& as : topo.ases()) {
    if (as.type == AsType::kTier1) continue;
    std::size_t got = 0;
    for (const auto& s : topo.enumerate_subnets(as, scaled(sc, 40))) {
      for (const auto& host : topo.hosts_in(as, s)) {
        if (got >= per_as) break;
        if (rng.chance(0.6)) {
          push_addr(list, host.addr);
          ++got;
        }
      }
      if (got >= per_as) break;
    }
    // Passive DNS also sees names for gateway ::1s (NS glue etc.).
    if (!topo.enumerate_subnets(as, 1).empty() && rng.chance(0.5))
      push_addr(list,
                Ipv6Addr::from_halves(topo.enumerate_subnets(as, 1)[0].base().hi(), 1));
  }
  return list;
}

SeedList make_cdn(const Topology& topo, const SeedScale& sc, unsigned k,
                  std::uint64_t seed) {
  // Active WWW client /64s observed by a CDN, anonymized with kIP before
  // release. Entries are *prefixes* of varying length.
  target::KipAggregator agg{k};
  (void)seed;  // the active-client set is ground truth, not sampled
  const std::size_t budget = scaled(sc, sc.cdn_client_64s);
  for (const auto& as : topo.ases()) {
    if (as.type != AsType::kEyeballIsp) continue;
    if (agg.distinct_64s() >= budget) break;
    for (const auto& s :
         topo.enumerate_subnets(as, budget - agg.distinct_64s())) {
      if (topo.client_active(as, s)) agg.add(s);
    }
  }
  SeedList list;
  list.name = "cdn-k" + std::to_string(k);
  list.entries = agg.aggregate();
  return list;
}

SeedList make_6gen(const Topology& topo, const SeedScale& sc, std::uint64_t seed) {
  // 6Gen loose clustering: group an input hitlist by /48, then generate new
  // addresses inside each cluster by recombining the nybble ranges observed
  // there. Dense clusters receive proportionally more generated targets.
  const auto caida = make_caida(topo, sc, seed);
  auto input = make_fdns_any(topo, sc, splitmix64(seed ^ 1));
  input.entries.insert(input.entries.end(), caida.entries.begin(), caida.entries.end());

  // Ordered map: generation draws from `rng` and stops at `out_budget`
  // inside the cluster loop below, so the visit order is output-shaping —
  // an unordered container here made the list depend on hash-table layout.
  std::map<std::uint64_t, std::vector<Ipv6Addr>> clusters;
  for (const auto& e : input.entries)
    clusters[e.base().masked(48).hi()].push_back(e.base());

  SeedList list;
  list.name = "6gen";
  Rng rng{splitmix64(seed ^ 0x66e4)};
  const auto out_budget = scaled(sc, sc.sixgen_out);
  for (const auto& [hi48, members] : clusters) {
    if (members.size() < 2) continue;
    // Observed nybble ranges across positions 12..31 (bits 48..128).
    std::uint8_t lo[32], hi[32];
    for (unsigned p = 12; p < 32; ++p) { lo[p] = 15; hi[p] = 0; }
    for (const auto& m : members)
      for (unsigned p = 12; p < 32; ++p) {
        lo[p] = std::min(lo[p], m.nybble(p));
        hi[p] = std::max(hi[p], m.nybble(p));
      }
    const auto quota =
        std::max<std::size_t>(4, out_budget * members.size() / input.entries.size());
    for (std::size_t i = 0; i < quota; ++i) {
      auto a = members[rng.below(members.size())];
      for (unsigned p = 12; p < 32; ++p) {
        // Loose mode: wildcard within [lo, hi] of the observed range.
        const auto span = static_cast<std::uint64_t>(hi[p] - lo[p]) + 1;
        a = a.with_nybble(p, static_cast<std::uint8_t>(lo[p] + rng.below(span)));
      }
      push_addr(list, a);
    }
    if (list.entries.size() >= out_budget) break;
  }
  return list;
}

SeedList make_tum(const Topology& topo, const SeedScale& sc, std::uint64_t seed) {
  // A union collection: fdns_any, part of caida, certificate-transparency
  // style hosts (content + residential dyndns, EUI-64-heavy), traceroute
  // targets (router ::1s), and a 6to4 tail.
  SeedList list;
  list.name = "tum";
  Rng rng{splitmix64(seed ^ 0x70b)};
  const auto fdns = make_fdns_any(topo, sc, seed);  // same snapshot as fdns_any
  list.entries = fdns.entries;
  for (const auto& e : make_caida(topo, sc, seed).entries)
    if (rng.chance(0.5)) list.entries.push_back(e);
  // ct-style: residential and content hosts, skewed toward EUI-64 IIDs.
  std::size_t extra = scaled(sc, sc.tum_extra);
  for (const auto& as : topo.ases()) {
    if (extra == 0) break;
    if (as.type != AsType::kEyeballIsp && as.type != AsType::kContent) continue;
    for (const auto& s : topo.enumerate_subnets(as, scaled(sc, 60))) {
      if (extra == 0) break;
      if (!rng.chance(as.type == AsType::kEyeballIsp ? 0.45 : 0.25)) continue;
      for (const auto& host : topo.hosts_in(as, s)) {
        const bool keep = is_eui64(host.addr) || rng.chance(0.4);
        if (keep && extra > 0) {
          push_addr(list, host.addr);
          --extra;
        }
      }
    }
  }
  return list;
}

SeedList make_random(const Topology& topo, const SeedScale& sc, std::uint64_t seed) {
  // Control: uniformly random addresses within announced space (random
  // prefix, then random bits below it). Only covering announcements
  // (length <= 48) participate — traffic-engineering more-specifics nest
  // inside them, and sampling them independently would overweight exactly
  // the dense corners an unguided control is not supposed to know about.
  SeedList list;
  list.name = "random";
  Rng rng{splitmix64(seed ^ 0x4a4d)};
  std::vector<Prefix> prefixes;
  topo.bgp().for_each([&](const Prefix& p, const simnet::Asn&) {
    if (p.len() <= 48) prefixes.push_back(p);
  });
  const auto n = scaled(sc, sc.random_targets);
  for (std::size_t i = 0; i < n; ++i)
    push_addr(list, random_in(prefixes[rng.below(prefixes.size())], rng));
  return list;
}

std::vector<SeedList> make_all(const Topology& topo, const SeedScale& sc,
                               std::uint64_t seed) {
  std::vector<SeedList> all;
  all.push_back(make_caida(topo, sc, seed));
  all.push_back(make_dnsdb(topo, sc, seed));
  all.push_back(make_fiebig(topo, sc, seed));
  all.push_back(make_fdns_any(topo, sc, seed));
  all.push_back(make_cdn(topo, sc, 256, seed));
  all.push_back(make_cdn(topo, sc, 32, seed));
  all.push_back(make_6gen(topo, sc, seed));
  all.push_back(make_tum(topo, sc, seed));
  all.push_back(make_random(topo, sc, seed));
  return all;
}

}  // namespace beholder6::seeds
