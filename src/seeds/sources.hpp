// seeds/sources.hpp — generative models of the paper's seven seed sources
// plus the routed-random control (paper §3.2, Table 1).
//
// The paper's seed lists are proprietary or ephemeral datasets. Each
// generator here samples the simnet ground truth with the documented bias
// of its real counterpart, so every downstream experiment (DPL shape,
// breadth vs depth, discovery power, EUI-64 concentration) sees the same
// statistical structure the paper saw:
//
//   caida    — ::1 plus one random address per BGP-announced prefix of
//              length <= 48 (breadth, no depth)
//   fiebig   — reverse-DNS zone walking: dense runs of consecutive /64s in
//              rDNS-maintaining networks; roughly half under prefixes that
//              are not announced in BGP (registered but unrouted space)
//   fdns_any — forward-DNS ANY answers: server addresses in content and
//              university networks, some 6to4, lowbyte-heavy
//   dnsdb    — passive DNS: fewer addresses but the broadest ASN coverage,
//              including small edge ASes nothing else sees
//   cdn      — kIP-anonymized aggregates of active WWW client /64s in
//              eyeball ISPs (k=32 and k=256); prefixes, not addresses
//   6gen     — 6Gen-style loose-cluster expansion of an input hitlist
//   tum      — a union collection (includes fdns_any, parts of caida,
//              certificate-transparency-style hosts, traceroute targets)
//   random   — uniformly random addresses in BGP-routed space (control)
#pragma once

#include <cstdint>

#include "netbase/rng.hpp"
#include "simnet/topology.hpp"
#include "target/seedlist.hpp"
#include "target/transform.hpp"

namespace beholder6::seeds {

/// Scale factor over the default sizes below; the paper's lists range from
/// 105k (caida) to 26.5M (random) — we keep their ratios at bench scale.
struct SeedScale {
  double scale = 1.0;
  std::size_t caida_random_per_prefix = 1;
  std::size_t fiebig_run_len = 24;        // consecutive /64s per rDNS run
  std::size_t fdns_hosts = 12000;
  std::size_t dnsdb_hosts = 5000;
  std::size_t cdn_client_64s = 240000;    // /64s scanned for client activity
  std::size_t sixgen_out = 9000;
  std::size_t tum_extra = 4000;
  std::size_t random_targets = 26000;
};

using target::SeedList;

[[nodiscard]] SeedList make_caida(const simnet::Topology& topo, const SeedScale& sc,
                                  std::uint64_t seed);
[[nodiscard]] SeedList make_fiebig(const simnet::Topology& topo, const SeedScale& sc,
                                   std::uint64_t seed);
[[nodiscard]] SeedList make_fdns_any(const simnet::Topology& topo, const SeedScale& sc,
                                     std::uint64_t seed);
[[nodiscard]] SeedList make_dnsdb(const simnet::Topology& topo, const SeedScale& sc,
                                  std::uint64_t seed);
/// CDN client prefixes after kIP aggregation with the given k (32 or 256).
[[nodiscard]] SeedList make_cdn(const simnet::Topology& topo, const SeedScale& sc,
                                unsigned k, std::uint64_t seed);
/// 6Gen loose mode over an input hitlist (defaults to caida ∪ some hosts).
[[nodiscard]] SeedList make_6gen(const simnet::Topology& topo, const SeedScale& sc,
                                 std::uint64_t seed);
[[nodiscard]] SeedList make_tum(const simnet::Topology& topo, const SeedScale& sc,
                                std::uint64_t seed);
[[nodiscard]] SeedList make_random(const simnet::Topology& topo, const SeedScale& sc,
                                   std::uint64_t seed);

/// All eight standard lists in the paper's order (cdn appears twice: k256
/// and k32).
[[nodiscard]] std::vector<SeedList> make_all(const simnet::Topology& topo,
                                             const SeedScale& sc, std::uint64_t seed);

}  // namespace beholder6::seeds
