// seeds/entropy.hpp — Entropy/IP-style address structure analysis and
// generation (Foremski, Plonka, Berger — IMC 2016; cited by the paper as a
// target-generation method alongside 6Gen).
//
// The model measures per-nybble Shannon entropy across a hitlist, segments
// the 32 nybbles into runs of similar entropy (constant / low-entropy
// "dictionary" / high-entropy "random" segments), and generates candidate
// addresses by sampling each segment from its observed value distribution.
// Compared with 6Gen's range clustering, the entropy model captures
// positional structure (e.g. "nybbles 16-19 are always 0, nybble 23 takes
// one of three values") and generalizes across the whole list rather than
// per-cluster.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "netbase/ipv6.hpp"
#include "netbase/rng.hpp"
#include "target/seedlist.hpp"

namespace beholder6::seeds {

/// Per-nybble statistics over a hitlist.
struct NybbleStats {
  std::array<std::uint64_t, 16> counts{};
  /// Shannon entropy in bits (0 = constant, 4 = uniform).
  [[nodiscard]] double entropy() const;
  [[nodiscard]] std::uint64_t total() const;
};

/// A run of adjacent nybbles with homogeneous entropy character.
struct Segment {
  unsigned first = 0;  // nybble index, 0..31 (MSB-first)
  unsigned last = 0;   // inclusive
  enum class Kind : std::uint8_t {
    kConstant,  // entropy ~0: one observed value
    kValueSet,  // low entropy: a small dictionary of values
    kRandom,    // high entropy: effectively uniform
  } kind = Kind::kConstant;
  double mean_entropy = 0.0;
};

class EntropyModel {
 public:
  /// Thresholds (bits/nybble) separating the three segment kinds.
  struct Params {
    double constant_below = 0.05;
    double random_above = 3.0;
  };

  /// Fit the model to a list of addresses. Empty input yields an empty
  /// model that generates nothing.
  static EntropyModel fit(const std::vector<Ipv6Addr>& addrs, Params params);
  static EntropyModel fit(const std::vector<Ipv6Addr>& addrs) {
    return fit(addrs, Params{});
  }

  [[nodiscard]] const std::array<NybbleStats, 32>& nybbles() const { return stats_; }
  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }
  [[nodiscard]] std::size_t fitted_on() const { return n_; }

  /// Generate `count` candidate addresses: constant segments reproduce
  /// their value, value-set segments sample *joint* observed segment values
  /// (preserving intra-segment correlation), random segments draw uniform
  /// nybbles. Duplicates are possible; callers dedup downstream.
  [[nodiscard]] std::vector<Ipv6Addr> generate(std::size_t count, Rng rng) const;

  /// Generate as a SeedList for the standard target pipeline.
  [[nodiscard]] target::SeedList generate_seeds(std::size_t count, Rng rng,
                                                const std::string& name) const;

 private:
  std::array<NybbleStats, 32> stats_{};
  std::vector<Segment> segments_;
  // Joint observed values per segment (by segment index): each entry is the
  // segment's nybble string packed into a u64 with its observation weight.
  std::vector<std::map<std::uint64_t, std::uint64_t>> segment_values_;
  std::size_t n_ = 0;
};

}  // namespace beholder6::seeds
